//! Text and JSON renderings of an [`ObsSession`].
//!
//! The JSON exporter is hand-rolled (this crate is dependency-free) and
//! emits one stable schema shared by `jucq --metrics-json` and the
//! bench harness sidecars:
//!
//! ```json
//! {
//!   "schema": "jucq-obs/1",
//!   "spans": [{"id": 1, "parent": null, "name": "answer",
//!              "start_ns": 0, "dur_ns": 12345, "thread": 1}],
//!   "dropped_spans": 0,
//!   "counters": {"plan_cache.hits": 3},
//!   "gauges": {"plan_cache.hit_ratio": 0.75},
//!   "histograms": {"pipeline.execution.ns":
//!       {"count": 4, "sum": 100, "min": 10, "max": 40,
//!        "p50": 31, "p90": 63, "p95": 63, "p99": 63,
//!        "buckets": [[16, 32, 2], [32, 64, 2]]}}
//! }
//! ```

use crate::span::SpanRecord;
use crate::ObsSession;
use std::fmt::Write as _;

/// Escape `s` as the body of a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite `f64` in a JSON-safe way (`NaN`/`inf` become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Render a session as the stable JSON schema above.
pub fn to_json(session: &ObsSession) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"jucq-obs/1\",\"spans\":[");
    for (i, s) in session.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"thread\":{}}}",
            s.id,
            s.parent.map_or("null".to_owned(), |p| p.to_string()),
            escape_json(s.name),
            s.start_ns,
            s.dur_ns,
            s.thread,
        );
    }
    let _ = write!(out, "],\"dropped_spans\":{},\"counters\":{{", session.dropped_spans);
    for (i, (k, v)) in session.metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in session.metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(k), json_f64(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in session.metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            escape_json(k),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50,
            h.p90,
            h.p95,
            h.p99,
        );
        for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{hi},{c}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Append `span` and its children (pre-order) to `out`.
fn render_span_tree(
    out: &mut String,
    spans: &[SpanRecord],
    children: &[Vec<usize>],
    ix: usize,
    depth: usize,
) {
    let s = &spans[ix];
    let _ = writeln!(out, "{:indent$}{} {}", "", s.name, fmt_ns(s.dur_ns), indent = depth * 2);
    for &c in &children[ix] {
        render_span_tree(out, spans, children, c, depth + 1);
    }
}

/// Render a session as an indented span tree plus a metrics table.
pub fn to_text(session: &ObsSession) -> String {
    let mut out = String::new();
    if !session.spans.is_empty() {
        out.push_str("spans:\n");
        // Index spans by id, then attach children in start order.
        let spans = &session.spans;
        let pos_of_id: std::collections::HashMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
        for &i in &order {
            match spans[i].parent.and_then(|p| pos_of_id.get(&p)) {
                Some(&p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        for r in roots {
            render_span_tree(&mut out, spans, &children, r, 1);
        }
        if session.dropped_spans > 0 {
            let _ = writeln!(out, "  ({} spans dropped)", session.dropped_spans);
        }
    }
    if !session.metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &session.metrics.counters {
            let _ = writeln!(out, "  {k:<40} {v}");
        }
    }
    if !session.metrics.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &session.metrics.gauges {
            let _ = writeln!(out, "  {k:<40} {v:.4}");
        }
    }
    if !session.metrics.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (k, h) in &session.metrics.histograms {
            let _ = writeln!(
                out,
                "  {k:<40} n={} p50≤{} p90≤{} p95≤{} p99≤{} max={}",
                h.count, h.p50, h.p90, h.p95, h.p99, h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no observability data collected)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::ObsSession;

    /// Minimal recursive-descent JSON validity checker, enough to prove
    /// the exporter emits well-formed JSON.
    mod json_check {
        pub fn validate(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0;
            skip_ws(b, &mut i);
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing bytes at {i}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => lit(b, i, b"true"),
                Some(b'f') => lit(b, i, b"false"),
                Some(b'n') => lit(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at {i}")),
            }
        }

        fn lit(b: &[u8], i: &mut usize, l: &[u8]) -> Result<(), String> {
            if b[*i..].starts_with(l) {
                *i += l.len();
                Ok(())
            } else {
                Err(format!("bad literal at {i}"))
            }
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            if *i == start {
                Err(format!("empty number at {start}"))
            } else {
                Ok(())
            }
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // opening quote
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
    }

    fn sample_session() -> ObsSession {
        let r = Registry::default();
        r.counter_add("plan_cache.hits", 3);
        r.counter_add("plan_cache.misses", 1);
        r.gauge_set("plan_cache.hit_ratio", 0.75);
        for v in [10u64, 25, 31, 40] {
            r.histogram_record("pipeline.execution.ns", v);
        }
        ObsSession {
            spans: vec![
                crate::SpanRecord {
                    id: 1,
                    parent: None,
                    name: "answer",
                    start_ns: 0,
                    dur_ns: 5_000,
                    thread: 1,
                },
                crate::SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "execution \"quoted\"",
                    start_ns: 100,
                    dur_ns: 4_000,
                    thread: 1,
                },
            ],
            dropped_spans: 0,
            metrics: r.snapshot(),
        }
    }

    #[test]
    fn json_export_is_valid_json() {
        let j = to_json(&sample_session());
        json_check::validate(&j).expect("exporter must emit valid JSON");
        assert!(j.contains("\"plan_cache.hits\":3"));
        assert!(j.contains("\"schema\":\"jucq-obs/1\""));
        assert!(j.contains("execution \\\"quoted\\\""));
        assert!(j.contains("\"p95\":"), "percentile snapshot includes p95");
    }

    #[test]
    fn text_export_nests_children() {
        let t = to_text(&sample_session());
        let answer_at = t.find("  answer").expect("root span line");
        let child_at = t.find("    execution").expect("indented child line");
        assert!(child_at > answer_at);
        assert!(t.contains("plan_cache.hits"));
        assert!(t.contains("pipeline.execution.ns"));
    }

    #[test]
    fn empty_session_renders_placeholder() {
        let empty = ObsSession { spans: vec![], dropped_spans: 0, metrics: Default::default() };
        json_check::validate(&to_json(&empty)).expect("empty JSON valid");
        assert!(to_text(&empty).contains("no observability data"));
    }
}
