//! A minimal JSON value parser (zero-dependency, like the rest of the
//! crate).
//!
//! The workspace's exporters hand-roll their JSON *writers*; this is
//! the matching *reader*, shared by the query-log round-trip
//! ([`crate::record`]), the `jucq replay` harness, and the trace/schema
//! tests. It parses the full JSON grammar into a [`Value`] tree; it is
//! not streaming and not tuned for huge documents — query-log lines and
//! metric sidecars are small.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (later duplicates shadow earlier
    /// ones in [`Value::get`]).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (last occurrence wins), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse `text` as a single JSON document.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_owned(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &[u8], value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.utf8_run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.utf8_run(run_start)?);
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A surrogate pair: expect \uXXXX for the
                                // low half immediately after.
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 3;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The raw bytes `[run_start, pos)` as UTF-8.
    fn utf8_run(&self, run_start: usize) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.bytes[run_start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in string"))
    }

    /// Four hex digits starting at `pos` (leaving `pos` on the last one).
    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"k":[1,2,{"x":null}],"s":"\u00e9"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("é"));
        let arr = v.get("k").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("x").unwrap().is_null());
    }

    #[test]
    fn decodes_surrogate_pairs() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn round_trips_the_obs_exporter() {
        // The crate's own exporter must be parseable by the crate's own
        // parser — the round trip the replay harness depends on.
        let r = crate::metrics::Registry::default();
        r.counter_add("a.b", 1);
        r.histogram_record("h", 3);
        let session = crate::ObsSession { spans: vec![], dropped_spans: 0, metrics: r.snapshot() };
        let parsed = parse(&crate::export::to_json(&session)).unwrap();
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some("jucq-obs/1"));
        assert_eq!(parsed.get("counters").unwrap().get("a.b").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0f64, 1.5, 1e-9, 123456789.123, f64::MAX] {
            let text = format!("{v}");
            assert_eq!(parse(&text).unwrap().as_f64(), Some(v));
        }
    }
}
