//! The analytic cost model of §4.1.
//!
//! For a JUCQ `q(x̄):- q^UCQ₁ ⋈ … ⋈ q^UCQₘ`:
//!
//! ```text
//! c(q) = c_db                                   (i)   connection overhead
//!      + Σᵢ c_eval(q^UCQᵢ)                      (ii)  fragment evaluation
//!        └ c_unique(q^UCQᵢ) + Σ_CQ c_eval(CQ)   (iii) incl. per-fragment dedup
//!      + c_join(q^UCQ₁..ₘ)                      (iv)  fragment joins
//!      + c_mat(q^UCQᵢ, i ≠ k)                   (v)   materialization, largest
//!                                                     fragment k pipelined
//!      + c_unique(q)                            (vi)  final dedup
//! ```
//!
//! with `c_eval(CQ) = (c_t + c_j)·Σ_tᵢ |CQ_{tᵢ}|` (scan + linear join,
//! equation 2), `c_join = c_j · Σ` over fragment input volumes
//! (equation 3), `c_mat = c_m · Σ` over the same volumes excluding the
//! largest fragment (equation 4), and `c_unique(q) = c_l·|q|` for
//! in-memory hashing or `c_k·|q|·log|q|` once `|q|` exceeds the
//! disk-sort threshold. The `|·|` cardinalities come from the
//! statistics layer: exact per-triple extents, estimated UCQ/JUCQ
//! result sizes.

use std::sync::RwLock;

use jucq_model::{FxHashMap, FxHashSet};
use jucq_store::{
    collapsible_runs, PatternTerm, Statistics, StoreCq, StoreJucq, StorePattern, StoreUcq,
    TripleTable, VarId, ViewCatalog, ViewSignature,
};
use serde::{Deserialize, Serialize};

/// The system-dependent constants of the model, "which we determine by
/// running a set of simple calibration queries on the RDBMS being used"
/// (§4.1). Units: seconds (per tuple where applicable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// Fixed overhead of connecting to the engine (`c_db`).
    pub c_db: f64,
    /// Cost of retrieving one tuple by scan (`c_t`).
    pub c_t: f64,
    /// Per-input-tuple join effort (`c_j`).
    pub c_j: f64,
    /// Per-tuple materialization effort (`c_m`).
    pub c_m: f64,
    /// Per-tuple in-memory duplicate-elimination effort (`c_l`).
    pub c_l: f64,
    /// Per-tuple·log(tuple) disk-sort dedup effort (`c_k`).
    pub c_k: f64,
    /// Result size beyond which dedup switches from hashing (`c_l`) to
    /// disk merge sort (`c_k n log n`).
    pub sort_threshold: f64,
    /// Per-tuple cost of streaming one contiguous dictionary interval
    /// (`c_range`): a collapsed union member's tuples arrive from a
    /// single index range scan, skipping the per-member lookup setup and
    /// union-dedup pressure that `c_t + c_j` prices. Defaulted on
    /// deserialization so constants documents written before the
    /// hierarchy encoding existed still load.
    #[serde(default = "default_c_range")]
    pub c_range: f64,
    /// Per-tuple cost of copying one tuple out of a materialized
    /// fragment view (`c_view`): a view-backed fragment skips member
    /// scans, joins and union dedup entirely — its price is a single
    /// sequential copy of the stored result. Defaulted on
    /// deserialization so constants documents written before the view
    /// catalog existed still load.
    #[serde(default = "default_c_view")]
    pub c_view: f64,
}

/// `c_range` for constants documents serialized before the range-scan
/// collapse existed (and the [`Default`] value): a quarter of the
/// default `c_t + c_j` — a streamed interval tuple skips the member's
/// own scan setup and join bookkeeping.
fn default_c_range() -> f64 {
    2.5e-8
}

/// `c_view` for constants documents serialized before the view catalog
/// existed (and the [`Default`] value): below even `c_range` — a view
/// tuple is a plain copy of an already-deduplicated stored row, with no
/// index traversal at all.
fn default_c_view() -> f64 {
    1.5e-8
}

impl Default for CostConstants {
    /// Plausible laptop-scale defaults; experiments calibrate real ones.
    fn default() -> Self {
        CostConstants {
            c_db: 1e-3,
            c_t: 4e-8,
            c_j: 6e-8,
            c_m: 3e-8,
            c_l: 8e-8,
            c_k: 2e-8,
            sort_threshold: 5e6,
            c_range: default_c_range(),
            c_view: default_c_view(),
        }
    }
}

/// How `c_eval(CQ)` measures a member CQ's evaluation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalModel {
    /// Equation 2 verbatim: every atom's full extent is scanned —
    /// faithful to the paper's RDBMS plans, which scan each union arm's
    /// inputs.
    ScanVolume,
    /// The substrate-aware refinement: our engine evaluates member CQs
    /// with index-nested-loop pipelines, so the input volume is the
    /// first (smallest) extent plus the estimated intermediate sizes of
    /// the greedy pipeline prefixes. DESIGN.md documents this
    /// substitution; `ScanVolume` remains available as an ablation.
    IndexPipeline,
}

/// Cached per-fragment cost ingredients: everything `combine` needs,
/// computable once per fragment and reused across the many covers that
/// share it.
#[derive(Debug, Clone)]
pub struct FragComponents {
    /// Σ member `c_eval` (scan + linear join effort).
    pub eval: f64,
    /// Σ member scan volumes (the input-size proxy of equations 3–4).
    pub volume: f64,
    /// Estimated result cardinality of the fragment UCQ.
    pub card: f64,
    /// Join-selectivity domains of the fragment's head variables.
    pub var_domains: Vec<(VarId, f64)>,
}

impl FragComponents {
    /// Debug-mode sanity check: every ingredient must be finite and
    /// non-negative, or cover comparison silently corrupts (NaN breaks
    /// `<`; negative costs invert the greedy search's preferences).
    pub fn debug_check(&self) {
        debug_assert!(
            self.eval.is_finite() && self.eval >= 0.0,
            "fragment eval cost not finite/non-negative: {}",
            self.eval
        );
        debug_assert!(
            self.volume.is_finite() && self.volume >= 0.0,
            "fragment volume not finite/non-negative: {}",
            self.volume
        );
        debug_assert!(
            self.card.is_finite() && self.card >= 0.0,
            "fragment cardinality not finite/non-negative: {}",
            self.card
        );
        debug_assert!(
            self.var_domains.iter().all(|&(_, d)| d.is_finite() && d >= 0.0),
            "fragment var domain not finite/non-negative: {:?}",
            self.var_domains
        );
    }
}

/// Member-sampling threshold: fragments beyond this many member CQs are
/// estimated on an evenly-strided sample, scaled back up.
const MEMBER_SAMPLE_CAP: usize = 4096;

/// The §4.1 model bound to a dataset's statistics.
#[derive(Debug)]
pub struct PaperCostModel<'a> {
    table: &'a TripleTable,
    stats: &'a Statistics,
    constants: CostConstants,
    eval_model: EvalModel,
    /// Price range-collapse opportunities: a fragment whose members form
    /// consecutive-constant runs evaluates the collapsed share of its
    /// volume at `c_range` per tuple instead of `c_t + c_j`. Enabled by
    /// the engine when the profile's `range_scans` knob is on, so the
    /// cover search favors collapsible fragments exactly when the
    /// planner will actually collapse them.
    price_ranges: bool,
    /// Price view-backed fragments: a candidate fragment whose *body*
    /// signature has a current-epoch catalog entry costs `c_view` per
    /// stored tuple instead of its member scans and joins — so the
    /// cover search gravitates toward covers the catalog can serve.
    /// The body signature is head-agnostic (candidate heads are not
    /// final during search); a false positive only skews an estimate,
    /// never an answer.
    price_views: Option<&'a ViewCatalog>,
    /// Fragment-component memo; `RwLock` so concurrent scoring workers
    /// share the hot read path without exclusive locking.
    cache: RwLock<FxHashMap<Vec<StorePattern>, FragComponents>>,
}

impl<'a> PaperCostModel<'a> {
    /// Bind the model to a dataset and a set of calibrated constants.
    pub fn new(table: &'a TripleTable, stats: &'a Statistics, constants: CostConstants) -> Self {
        PaperCostModel {
            table,
            stats,
            constants,
            eval_model: EvalModel::IndexPipeline,
            price_ranges: false,
            price_views: None,
            cache: RwLock::new(FxHashMap::default()),
        }
    }

    /// Select the member-evaluation model (ablation hook).
    pub fn with_eval_model(mut self, eval_model: EvalModel) -> Self {
        self.eval_model = eval_model;
        self
    }

    /// Enable or disable range-collapse pricing (see
    /// [`CostConstants::c_range`]); callers pass the profile's
    /// `range_scans` knob.
    pub fn with_range_pricing(mut self, enabled: bool) -> Self {
        self.price_ranges = enabled;
        self
    }

    /// Enable view-backed fragment pricing (see
    /// [`CostConstants::c_view`]); callers pass the serving layer's
    /// catalog when the profile's `view_scans` knob is on. The memo
    /// cache keys only on template atoms, so bind the catalog before
    /// the first scoring call and keep it for the model's lifetime —
    /// [`crate::search`] constructs one model per cover search, which
    /// satisfies this by construction.
    pub fn with_view_pricing(mut self, catalog: Option<&'a ViewCatalog>) -> Self {
        self.price_views = catalog;
        self
    }

    /// The constants in use.
    pub fn constants(&self) -> &CostConstants {
        &self.constants
    }

    /// `c_unique`: duplicate elimination over `n` tuples.
    ///
    /// Degenerate cardinalities are guarded: a NaN or negative estimate
    /// (which would otherwise poison every comparison downstream — NaN
    /// breaks `<` ordering in the cover search) is treated as an empty
    /// input, and the `n·log n` branch clamps `n` to 2 before the log so
    /// `n ≤ 1` cannot produce a negative or `-inf` factor.
    pub fn c_unique(&self, n: f64) -> f64 {
        debug_assert!(!n.is_nan(), "c_unique over NaN cardinality");
        let n = if n.is_nan() { 0.0 } else { n.max(0.0) };
        if n <= self.constants.sort_threshold {
            self.constants.c_l * n
        } else {
            self.constants.c_k * n * n.max(2.0).log2()
        }
    }

    /// Total scan volume of one CQ: `Σ_tᵢ |CQ_{tᵢ}|` (exact extents).
    pub fn cq_scan_volume(&self, cq: &StoreCq) -> f64 {
        cq.patterns.iter().map(|p| self.stats.pattern_card(self.table, p) as f64).sum()
    }

    /// `c_eval(CQ) = c_scan + c_join = (c_t + c_j)·V` (equation 2),
    /// where `V` is the member's input volume under the configured
    /// [`EvalModel`].
    pub fn c_eval_cq(&self, cq: &StoreCq) -> f64 {
        (self.constants.c_t + self.constants.c_j) * self.member_input_volume(cq)
    }

    /// The member's evaluated input volume under the configured model.
    fn member_input_volume(&self, cq: &StoreCq) -> f64 {
        match self.eval_model {
            EvalModel::ScanVolume => self.cq_scan_volume(cq),
            EvalModel::IndexPipeline => {
                if cq.patterns.len() <= 1 {
                    return self.cq_scan_volume(cq);
                }
                // Greedy min-extent-first pipeline: the first extent is
                // scanned; every further step's input is the estimated
                // intermediate result so far.
                let mut order: Vec<usize> = (0..cq.patterns.len()).collect();
                let extents: Vec<f64> = cq
                    .patterns
                    .iter()
                    .map(|p| self.stats.pattern_card(self.table, p) as f64)
                    .collect();
                order
                    .sort_by(|&a, &b| extents[a].partial_cmp(&extents[b]).expect("finite extents"));
                let mut volume = extents[order[0]];
                let mut prefix: Vec<StorePattern> = vec![cq.patterns[order[0]]];
                let mut prefix_ext: Vec<f64> = vec![extents[order[0]]];
                for &i in &order[1..] {
                    prefix.push(cq.patterns[i]);
                    prefix_ext.push(extents[i]);
                    volume += self.stats.est_with_extents(&prefix, &prefix_ext);
                }
                volume
            }
        }
    }

    /// Total scan volume of a UCQ (the input-size proxy of equations
    /// 3–4).
    pub fn ucq_scan_volume(&self, ucq: &StoreUcq) -> f64 {
        ucq.cqs.iter().map(|cq| self.cq_scan_volume(cq)).sum()
    }

    /// `c_eval(UCQ) = c_unique(UCQ) + Σ_CQ c_eval(CQ)`.
    pub fn c_eval_ucq(&self, ucq: &StoreUcq) -> f64 {
        let comps = self.fragment_components(ucq, None);
        comps.eval + self.c_unique(comps.card)
    }

    /// Evenly strided member sample with its scale-back factor.
    fn member_sample<'u>(&self, ucq: &'u StoreUcq) -> (Vec<&'u StoreCq>, f64) {
        let n = ucq.cqs.len();
        if n <= MEMBER_SAMPLE_CAP {
            (ucq.cqs.iter().collect(), 1.0)
        } else {
            let stride = n.div_ceil(MEMBER_SAMPLE_CAP / 2);
            let sample: Vec<&StoreCq> = ucq.cqs.iter().step_by(stride).collect();
            // `step_by` over a non-empty list always yields at least one
            // member, but guard the ratio anyway: an empty sample must
            // scale by 1, not by n/0 = inf.
            let scale = if sample.is_empty() { 1.0 } else { n as f64 / sample.len() as f64 };
            (sample, scale)
        }
    }

    /// Compute a fragment's cost ingredients. `template` optionally
    /// supplies the fragment's *cover query* (its original atoms plus
    /// each atom's unioned reformulation extent): with it, the result
    /// cardinality is the overlap-aware join estimate over unioned
    /// extents instead of the member-sum, which overcounts badly (all
    /// members of a reformulated union return overlapping answers).
    pub fn fragment_components(
        &self,
        ucq: &StoreUcq,
        template: Option<(&[StorePattern], &[f64])>,
    ) -> FragComponents {
        let (members, scale) = self.member_sample(ucq);
        let mut eval = 0.0;
        let mut volume = 0.0;
        let mut member_card_sum = 0.0;
        for cq in &members {
            eval += self.c_eval_cq(cq);
            volume += self.cq_scan_volume(cq);
            if template.is_none() {
                member_card_sum += self.stats.est_cq(self.table, cq);
            }
        }
        eval *= scale;
        volume *= scale;
        member_card_sum *= scale;

        // Range-collapse discount: the share of members a planner
        // collapse would eliminate streams its volume at `c_range` per
        // tuple instead of paying per-member scan + join setup.
        // Detection only runs below the sampling cap — a strided sample
        // destroys id-consecutiveness, so larger unions conservatively
        // keep the undiscounted price.
        if self.price_ranges && ucq.cqs.len() > 1 && ucq.cqs.len() <= MEMBER_SAMPLE_CAP {
            let runs = collapsible_runs(ucq.cqs.iter());
            let collapsed: usize = runs.iter().map(|r| r.members.len() - 1).sum();
            if collapsed > 0 {
                let f = collapsed as f64 / ucq.cqs.len() as f64;
                eval = eval * (1.0 - f) + self.constants.c_range * volume * f;
            }
        }

        let card = match template {
            Some((atoms, extents)) => {
                debug_assert_eq!(atoms.len(), extents.len());
                self.stats.est_with_extents(atoms, extents)
            }
            None => member_card_sum,
        };

        // Head-variable domains for fragment-join selectivity.
        let head_vars: Vec<VarId> = ucq.head.clone();
        let mut var_domains: Vec<(VarId, f64)> = Vec::with_capacity(head_vars.len());
        match template {
            Some((atoms, extents)) => {
                for &v in &head_vars {
                    let d = self.stats.var_domain_in(atoms, extents, v);
                    var_domains.push((v, d.min(card.max(1.0))));
                }
            }
            None => {
                // Derive from (sampled) members: pattern-based domains,
                // plus distinct constants for instantiated head vars.
                let mut consts: FxHashMap<VarId, FxHashSet<jucq_model::TermId>> =
                    FxHashMap::default();
                let mut domains: FxHashMap<VarId, f64> = FxHashMap::default();
                for cq in &members {
                    let extents: Vec<f64> = cq
                        .patterns
                        .iter()
                        .map(|p| self.stats.pattern_card(self.table, p) as f64)
                        .collect();
                    for &v in &head_vars {
                        let d = self.stats.var_domain_in(&cq.patterns, &extents, v);
                        domains.entry(v).and_modify(|cur| *cur = cur.max(d)).or_insert(d);
                    }
                    for (pos, &v) in head_vars.iter().enumerate() {
                        if let Some(PatternTerm::Const(c)) = cq.head.get(pos) {
                            consts.entry(v).or_default().insert(*c);
                        }
                    }
                }
                for &v in &head_vars {
                    let mut d = domains.get(&v).copied().unwrap_or(1.0);
                    if let Some(cs) = consts.get(&v) {
                        d = d.max(cs.len() as f64 * scale.min(8.0));
                    }
                    var_domains.push((v, d.min(card.max(1.0))));
                }
            }
        }
        let mut comps = FragComponents { eval, volume, card, var_domains };

        // View-backed pricing: if the catalog holds this fragment body
        // at the current epoch, the fragment's true cost is one
        // sequential copy of the stored result — and its stored tuple
        // count is the *exact* result cardinality, better than any
        // estimate.
        if let Some(catalog) = self.price_views {
            if let Some(tuples) = catalog.body_tuples(&ViewSignature::body_of(ucq)) {
                let t = tuples as f64;
                comps.eval = self.constants.c_view * t;
                comps.volume = t;
                comps.card = t;
                for d in &mut comps.var_domains {
                    d.1 = d.1.min(t.max(1.0));
                }
            }
        }

        comps.debug_check();
        comps
    }

    /// [`PaperCostModel::fragment_components`] memoized by the
    /// fragment's template atoms (content-addressed, so one model
    /// instance can serve several queries safely).
    pub fn fragment_components_cached(
        &self,
        ucq: &StoreUcq,
        template: Option<(&[StorePattern], &[f64])>,
    ) -> FragComponents {
        let Some((atoms, _)) = template else {
            return self.fragment_components(ucq, template);
        };
        if let Some(hit) = self.cache.read().expect("component cache lock").get(atoms) {
            return hit.clone();
        }
        let comps = self.fragment_components(ucq, template);
        self.cache.write().expect("component cache lock").insert(atoms.to_vec(), comps.clone());
        comps
    }

    /// Equation 1: assemble a JUCQ's cost from its fragments'
    /// ingredients.
    ///
    /// Join and materialization inputs (equations 3–4) are measured per
    /// the configured [`EvalModel`]: the literal `ScanVolume` variant
    /// uses the paper's scan-volume proxy for fragment result sizes,
    /// while `IndexPipeline` uses the estimated fragment cardinalities —
    /// the engine joins and materializes *results*, and the
    /// overlap-aware estimates make that quantity available (the scan
    /// proxy overstates a selective fragment's join input by orders of
    /// magnitude).
    pub fn combine(&self, frags: &[FragComponents]) -> f64 {
        let c = &self.constants;
        let eval: f64 = frags.iter().map(|f| f.eval + self.c_unique(f.card)).sum();
        let total_volume: f64 = frags.iter().map(|f| f.volume).sum();
        let join_measure = |f: &FragComponents| match self.eval_model {
            EvalModel::ScanVolume => f.volume,
            EvalModel::IndexPipeline => f.card,
        };
        let (join, mat) = if frags.len() > 1 {
            let total: f64 = frags.iter().map(join_measure).sum();
            let largest = frags.iter().map(join_measure).fold(f64::NEG_INFINITY, f64::max);
            (c.c_j * total, c.c_m * (total - largest).max(0.0))
        } else {
            (0.0, 0.0)
        };
        // Fragment-join cardinality: product of fragment estimates with
        // per-shared-variable containment selectivity.
        let mut est: f64 = frags.iter().map(|f| f.card).product();
        let mut var_domains: FxHashMap<VarId, Vec<f64>> = FxHashMap::default();
        for f in frags {
            for &(v, d) in &f.var_domains {
                var_domains.entry(v).or_default().push(d);
            }
        }
        for (_, mut domains) in var_domains {
            if domains.len() < 2 {
                continue;
            }
            domains.sort_by(|a, b| a.partial_cmp(b).expect("finite domains"));
            for d in &domains[1..] {
                est /= d.max(1.0);
            }
        }
        // Clamp by the plan's total input: independence estimates can
        // explode on many-fragment covers, and every JUCQ of one query
        // has the same true result anyway.
        let final_card = est.min(total_volume.max(1.0));
        let total = c.c_db + eval + join + mat + self.c_unique(final_card);
        debug_assert!(
            total.is_finite() && total >= 0.0,
            "combined JUCQ cost not finite/non-negative: {total}"
        );
        total
    }

    /// Full JUCQ cost (equation 1 with equations 2–4 injected),
    /// computed from per-fragment components without template
    /// information (used when only the compiled JUCQ is at hand; the
    /// cover search supplies templates through
    /// [`PaperCostModel::fragment_components_cached`]).
    pub fn cost(&self, jucq: &StoreJucq) -> f64 {
        let comps: Vec<FragComponents> =
            jucq.fragments.iter().map(|u| self.fragment_components(u, None)).collect();
        self.combine(&comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};
    use jucq_store::{PatternTerm, StorePattern, VarId};

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn t(s: u32, p: u32, o: u32) -> TripleId {
        TripleId::new(id(s), id(p), id(o))
    }

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(id(i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn setup() -> (TripleTable, Statistics) {
        let triples: Vec<TripleId> =
            (0..50).map(|i| t(i, 10, i % 5)).chain((0..10).map(|i| t(i, 11, 100 + i))).collect();
        let table = TripleTable::build(&triples);
        let stats = Statistics::build(&table);
        (table, stats)
    }

    fn frag(patterns: Vec<StorePattern>, head: Vec<VarId>) -> StoreUcq {
        StoreUcq::new(vec![StoreCq::with_var_head(patterns, head.clone())], head)
    }

    #[test]
    fn unique_switches_regimes() {
        let (table, stats) = setup();
        let constants = CostConstants { sort_threshold: 100.0, ..CostConstants::default() };
        let m = PaperCostModel::new(&table, &stats, constants);
        let small = m.c_unique(100.0);
        let large = m.c_unique(101.0);
        assert!((small - constants.c_l * 100.0).abs() < 1e-12);
        assert!((large - constants.c_k * 101.0 * 101f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn scan_volume_uses_exact_extents() {
        let (table, stats) = setup();
        let m = PaperCostModel::new(&table, &stats, CostConstants::default());
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), v(2))],
            vec![0],
        );
        assert_eq!(m.cq_scan_volume(&cq), 60.0);
    }

    #[test]
    fn single_fragment_has_no_join_or_mat_cost() {
        let (table, stats) = setup();
        let constants = CostConstants::default();
        let m = PaperCostModel::new(&table, &stats, constants);
        let f = frag(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]);
        let jucq = StoreJucq::from_ucq(f.clone());
        let expected =
            constants.c_db + m.c_eval_ucq(&f) + m.c_unique(stats.est_jucq(&table, &jucq));
        assert!((m.cost(&jucq) - expected).abs() < 1e-12);
    }

    #[test]
    fn multi_fragment_adds_join_and_materialization() {
        let (table, stats) = setup();
        let m = PaperCostModel::new(&table, &stats, CostConstants::default());
        let fa = frag(vec![StorePattern::new(v(0), c(10), v(1))], vec![0]);
        let fb = frag(vec![StorePattern::new(v(0), c(11), v(2))], vec![0]);
        let joint = StoreJucq::new(vec![fa.clone(), fb.clone()], vec![0]);
        let single_costs = m.c_eval_ucq(&fa) + m.c_eval_ucq(&fb);
        assert!(m.cost(&joint) > single_costs, "join + mat + dedup add cost");
    }

    #[test]
    fn materialization_skips_largest_fragment() {
        let (table, stats) = setup();
        let constants = CostConstants {
            c_db: 0.0,
            c_t: 0.0,
            c_j: 0.0,
            c_l: 0.0,
            c_k: 0.0,
            c_m: 1.0,
            sort_threshold: f64::MAX,
            c_range: 0.0,
            c_view: 0.0,
        };
        let m = PaperCostModel::new(&table, &stats, constants);
        // Volumes: fragment a = 50, fragment b = 10 ⇒ mat cost = 10.
        let fa = frag(vec![StorePattern::new(v(0), c(10), v(1))], vec![0]);
        let fb = frag(vec![StorePattern::new(v(0), c(11), v(2))], vec![0]);
        let joint = StoreJucq::new(vec![fa, fb], vec![0]);
        assert!((m.cost(&joint) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn range_pricing_discounts_collapsible_fragments() {
        let (table, stats) = setup();
        let m_off = PaperCostModel::new(&table, &stats, CostConstants::default());
        let m_on =
            PaperCostModel::new(&table, &stats, CostConstants::default()).with_range_pricing(true);
        // Members differing only in a consecutive object constant
        // (objects 0..5 of predicate 10 — the planner would collapse
        // them into one RangeScan).
        let consecutive = StoreUcq::new(
            (0..5)
                .map(|o| {
                    StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(o))], vec![0])
                })
                .collect(),
            vec![0],
        );
        let priced = m_on.fragment_components(&consecutive, None);
        let plain = m_off.fragment_components(&consecutive, None);
        assert!(
            priced.eval < plain.eval,
            "collapsible fragment not discounted: {} vs {}",
            priced.eval,
            plain.eval
        );
        // Gapped constants form no run: both models price identically.
        let gapped = StoreUcq::new(
            [0u32, 2, 4]
                .iter()
                .map(|&o| {
                    StoreCq::with_var_head(vec![StorePattern::new(v(0), c(10), c(o))], vec![0])
                })
                .collect(),
            vec![0],
        );
        let priced = m_on.fragment_components(&gapped, None);
        let plain = m_off.fragment_components(&gapped, None);
        assert_eq!(priced.eval, plain.eval, "non-collapsible fragment must not be discounted");
    }

    #[test]
    fn view_pricing_discounts_catalog_backed_fragments() {
        use jucq_store::{Relation, ViewCatalog, ViewFootprint, ViewSignature};

        let (table, stats) = setup();
        let f = frag(
            vec![StorePattern::new(v(0), c(10), v(1)), StorePattern::new(v(0), c(11), v(2))],
            vec![0],
        );

        // Materialize a stand-in result for the fragment and register it.
        let mut rows = Relation::empty(vec![0]);
        for i in 0..10u32 {
            rows.push_row(&[id(i)]);
        }
        let catalog = ViewCatalog::new(1_000);
        assert!(catalog.insert(
            ViewSignature::of(&f),
            ViewSignature::body_of(&f),
            rows,
            ViewFootprint::of(&f, id(9999)),
        ));

        let plain = PaperCostModel::new(&table, &stats, CostConstants::default());
        let priced = PaperCostModel::new(&table, &stats, CostConstants::default())
            .with_view_pricing(Some(&catalog));
        let without = plain.fragment_components(&f, None);
        let with = priced.fragment_components(&f, None);
        assert!(
            with.eval < without.eval,
            "view-backed fragment not discounted: {} vs {}",
            with.eval,
            without.eval
        );
        assert_eq!(with.card, 10.0, "stored tuple count is the exact cardinality");
        assert_eq!(with.volume, 10.0);

        // A fragment the catalog does not hold prices identically.
        let other = frag(vec![StorePattern::new(v(0), c(11), v(1))], vec![0]);
        assert_eq!(
            plain.fragment_components(&other, None).eval,
            priced.fragment_components(&other, None).eval,
            "non-catalog fragment must not be discounted"
        );
    }

    #[test]
    fn bigger_scan_volume_costs_more() {
        let (table, stats) = setup();
        let m = PaperCostModel::new(&table, &stats, CostConstants::default());
        let big = StoreJucq::from_ucq(frag(vec![StorePattern::new(v(0), c(10), v(1))], vec![0, 1]));
        let small =
            StoreJucq::from_ucq(frag(vec![StorePattern::new(v(0), c(11), v(1))], vec![0, 1]));
        assert!(m.cost(&big) > m.cost(&small));
    }
}
