//! GCov — the greedy query cover algorithm (§4.3, Algorithm 1).
//!
//! GCov starts from the all-singletons cover `C₀ = {{t₁},…,{tₙ}}` and
//! explores *moves*: adding to one fragment an extra triple connected to
//! it by a join variable. Moves whose resulting cover does not degrade
//! the best cost are kept in a list sorted by increasing estimated
//! cost; the search repeatedly applies the most promising move,
//! breadth-first and greedily, updating the best cover whenever a move
//! improves on it. After every cover update, fragments made redundant by
//! the move are pruned in decreasing-cost order (the paper's sorted
//! redundancy check). The algorithm is anytime; an optional move cap and
//! time budget bound the search.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use jucq_model::FxHashSet;
use jucq_reformulation::{Cover, CoverError};

use crate::search::{CoverSearch, CoverSearchResult};

/// Cost-ordered move list keyed by (cost bits, tiebreak counter).
struct MoveList {
    map: BTreeMap<(u64, u64), Cover>,
    counter: u64,
}

impl MoveList {
    fn new() -> Self {
        MoveList { map: BTreeMap::new(), counter: 0 }
    }

    fn push(&mut self, cost: f64, cover: Cover) {
        // f64 bits of non-negative costs (incl. +inf) order
        // consistently. NaN is mapped to +inf explicitly: `max(0.0)`
        // would silently turn it into the bits of 0.0, making a poisoned
        // estimate the *cheapest* move in the list.
        debug_assert!(!cost.is_nan(), "NaN cover cost pushed to move list");
        let cost = if cost.is_nan() { f64::INFINITY } else { cost.max(0.0) };
        let key = (cost.to_bits(), self.counter);
        self.counter += 1;
        self.map.insert(key, cover);
    }

    fn pop_min(&mut self) -> Option<(f64, Cover)> {
        let (&key, _) = self.map.iter().next()?;
        let cover = self.map.remove(&key).expect("key present");
        Some((f64::from_bits(key.0), cover))
    }

    fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Run GCov (Algorithm 1). `max_moves` bounds the number of applied
/// moves; `budget` bounds wall-clock time (the paper notes "one could
/// easily change the stop condition").
///
/// Queries with no valid starting cover — a disconnected body, whose
/// singleton fragments would be mutually isolated — return the
/// [`CoverError`] instead of panicking; the caller decides whether to
/// fall back to saturation or surface the error.
pub fn gcov(
    search: &CoverSearch<'_>,
    budget: Duration,
    max_moves: usize,
) -> Result<CoverSearchResult, CoverError> {
    jucq_obs::span!("cover_search");
    let started = Instant::now();
    let q = search.query();

    let c0 = Cover::singletons(q)?;
    let mut best_cost = search.cover_cost(&c0);
    let mut best = c0.clone();

    let mut analysed: FxHashSet<Cover> = FxHashSet::default();
    analysed.insert(c0.clone());
    let mut moves = MoveList::new();
    let mut truncated = false;

    // Develop the moves available from a cover; push those not worse
    // than the current best. Candidates are gathered first (generation
    // and the analysed-dedup stay sequential, so the candidate order is
    // exactly the sequential one), then batch-scored on the search's
    // worker pool; pushing in candidate order preserves the move list's
    // insertion-order tiebreak.
    let develop = |cover: &Cover,
                   best_cost: f64,
                   analysed: &mut FxHashSet<Cover>,
                   moves: &mut MoveList,
                   strict: bool| {
        let mut candidates: Vec<Cover> = Vec::new();
        for (fi, frag) in cover.fragments().iter().enumerate() {
            for t in 0..q.len() {
                if frag.contains(&t) {
                    continue;
                }
                // The added triple must join the fragment.
                let mut with_t = frag.clone();
                with_t.push(t);
                with_t.sort_unstable();
                if !q.atoms_connected(&with_t) {
                    continue;
                }
                let Some(next) = cover.add_atom(q, fi, t) else {
                    continue;
                };
                let next = next.prune_redundant_by(q, |f| search.fragment_cost(f));
                if !analysed.insert(next.clone()) {
                    continue;
                }
                candidates.push(next);
            }
        }
        let costs = search.cover_costs(&candidates);
        for (next, cost) in candidates.into_iter().zip(costs) {
            let keep = if strict { cost < best_cost } else { cost <= best_cost };
            if keep {
                moves.push(cost, next);
            }
        }
    };

    // Initial moves from C₀ (Algorithm 1, lines 4–7: kept when not
    // worse than the best cost so far).
    develop(&c0, best_cost, &mut analysed, &mut moves, false);

    // Greedy best-first exploration (lines 8–16).
    let mut applied = 0usize;
    while !moves.is_empty() {
        if applied >= max_moves || started.elapsed() > budget {
            truncated = true;
            break;
        }
        let (cost, cover) = moves.pop_min().expect("non-empty move list");
        applied += 1;
        if cost <= best_cost {
            best_cost = cost;
            best = cover.clone();
        }
        // New moves must strictly improve on the best (line 15).
        develop(&cover, best_cost, &mut analysed, &mut moves, true);
    }

    Ok(CoverSearchResult {
        cover: best,
        estimated_cost: best_cost,
        explored: search.explored(),
        elapsed: started.elapsed(),
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostConstants, PaperCostModel};
    use crate::ecov::ecov;
    use jucq_model::{Graph, Term, TermId, Triple};
    use jucq_reformulation::reformulate::ReformulationEnv;
    use jucq_reformulation::BgpQuery;
    use jucq_store::{EngineProfile, PatternTerm, Store, StorePattern};

    struct Fixture {
        graph: Graph,
        rdf_type: TermId,
        store: Store,
    }

    /// A dataset where a selective atom (p_sel) pairs with an expensive
    /// reformulation-heavy atom (rdf:type with a deep hierarchy), so
    /// grouping matters.
    fn fixture() -> Fixture {
        let mut graph = Graph::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let mut triples = Vec::new();
        // Class hierarchy: C0 ⊒ C1 ⊒ ... ⊒ C5; several domain props.
        for i in 0..5 {
            triples.push(t(
                &format!("C{}", i + 1),
                jucq_model::vocab::RDFS_SUBCLASS_OF,
                Term::uri(format!("C{i}")),
            ));
            triples.push(t(
                &format!("d{i}"),
                jucq_model::vocab::RDFS_DOMAIN,
                Term::uri(format!("C{i}")),
            ));
        }
        for i in 0..200 {
            triples.push(t(&format!("e{i}"), "d0", Term::uri("x")));
            triples.push(t(
                &format!("e{i}"),
                jucq_model::vocab::RDF_TYPE,
                Term::uri(format!("C{}", i % 6)),
            ));
        }
        // p_sel: very selective.
        triples.push(t("e0", "psel", Term::uri("target")));
        graph.extend(&triples);
        let rdf_type = graph.rdf_type();
        let store = Store::from_triples(graph.data(), EngineProfile::pg_like());
        Fixture { graph, rdf_type, store }
    }

    fn query(f: &Fixture) -> BgpQuery {
        let ty = f.rdf_type;
        let c0 = f.graph.dict().lookup(&Term::uri("C0")).unwrap();
        let psel = f.graph.dict().lookup(&Term::uri("psel")).unwrap();
        let d0 = f.graph.dict().lookup(&Term::uri("d0")).unwrap();
        BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(ty),
                    PatternTerm::Const(c0),
                ),
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(psel),
                    PatternTerm::Var(1),
                ),
                StorePattern::new(PatternTerm::Var(0), PatternTerm::Const(d0), PatternTerm::Var(2)),
            ],
        )
    }

    #[test]
    fn gcov_completes_and_returns_valid_cover() {
        let f = fixture();
        let q = query(&f);
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let r = gcov(&search, Duration::from_secs(10), 10_000).unwrap();
        assert!(!r.truncated);
        assert!(r.estimated_cost.is_finite());
        // All atoms covered.
        let covered: Vec<usize> = {
            let mut v: Vec<usize> = r.cover.fragments().into_iter().flatten().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(covered, vec![0, 1, 2]);
    }

    #[test]
    fn gcov_not_worse_than_singletons() {
        let f = fixture();
        let q = query(&f);
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let r = gcov(&search, Duration::from_secs(10), 10_000).unwrap();
        let scq_cost = search.cover_cost(&Cover::singletons(&q).unwrap());
        assert!(r.estimated_cost <= scq_cost + 1e-12);
    }

    #[test]
    fn gcov_explores_fewer_covers_than_ecov() {
        let f = fixture();
        let q = query(&f);
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());

        let s1 = CoverSearch::new(&q, env, &model);
        let g = gcov(&s1, Duration::from_secs(10), 10_000).unwrap();
        let s2 = CoverSearch::new(&q, env, &model);
        let e = ecov(&s2, Duration::from_secs(10)).unwrap();
        assert!(g.explored <= e.explored, "gcov {} vs ecov {}", g.explored, e.explored);
        // The greedy result should be close to the exhaustive optimum
        // (paper: "GCov JUCQ performs as well as the ECov one").
        assert!(g.estimated_cost <= e.estimated_cost * 4.0 + 1e-9);
    }

    #[test]
    fn move_list_orders_by_cost() {
        let f = fixture();
        let q = query(&f);
        let c = Cover::singletons(&q).unwrap();
        let mut ml = MoveList::new();
        ml.push(5.0, c.clone());
        ml.push(1.0, c.clone());
        ml.push(3.0, c);
        let (a, _) = ml.pop_min().unwrap();
        let (b, _) = ml.pop_min().unwrap();
        let (z, _) = ml.pop_min().unwrap();
        assert_eq!((a, b, z), (1.0, 3.0, 5.0));
        assert!(ml.pop_min().is_none());
    }

    #[test]
    fn single_atom_query_trivially_best() {
        let f = fixture();
        let psel = f.graph.dict().lookup(&Term::uri("psel")).unwrap();
        let q = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(psel),
                PatternTerm::Var(1),
            )],
        );
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let r = gcov(&search, Duration::from_secs(5), 100).unwrap();
        assert_eq!(r.cover.len(), 1);
        assert_eq!(r.explored, 1, "no moves available");
    }
}
