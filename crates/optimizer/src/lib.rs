//! # jucq-optimizer — cost-based selection of JUCQ reformulations
//!
//! Section 4 of the paper:
//!
//! * [`cost`] — the analytic cost model of §4.1 for evaluating a JUCQ
//!   through an RDBMS (connection overhead, per-fragment evaluation,
//!   duplicate elimination, fragment joins, materialization of all but
//!   the largest fragment, final dedup), parameterized by per-engine
//!   constants;
//! * [`mod@calibrate`] — learns those constants by "running a set of simple
//!   calibration queries on the RDBMS being used" (§4.1);
//! * [`search`] — the shared cover-search machinery: fragment
//!   reformulation caching and pluggable cost estimation (the paper's
//!   model or the engine's internal one, as compared in Figure 9);
//! * [`mod@ecov`] — the exhaustive cover algorithm ECov (§4.2), the "golden
//!   standard" baseline;
//! * [`mod@gcov`] — the greedy, anytime cover algorithm GCov (§4.3,
//!   Algorithm 1).

#![warn(missing_docs)]

pub mod calibrate;
pub mod cost;
pub mod ecov;
pub mod gcov;
pub mod search;

pub use calibrate::calibrate;
pub use cost::{CostConstants, PaperCostModel};
pub use ecov::ecov;
pub use gcov::gcov;
pub use search::{CoverSearch, CoverSearchResult, EngineCostModel, JucqCostEstimator};
