//! Shared cover-search machinery: fragment caching + pluggable cost.
//!
//! Both ECov and GCov repeatedly estimate "the cost of the cover-based
//! reformulation" of candidate covers. A [`CoverSearch`] memoizes the
//! expensive part — reformulating each fragment's cover query into its
//! UCQ — keyed by the fragment's atom set, and delegates JUCQ costing
//! to a [`JucqCostEstimator`]: either the paper's analytic model
//! ([`crate::cost::PaperCostModel`]) or the engine's internal estimator
//! ([`EngineCostModel`], the Figure 9 alternative).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use jucq_model::FxHashMap;
use jucq_reformulation::reformulate::{reformulate_with_limit, ReformulationEnv};
use jucq_reformulation::{BgpQuery, Cover};
use jucq_store::{internal_cost, Store, StoreJucq, StorePattern, StoreUcq, VarId};

use crate::cost::PaperCostModel;

/// Everything the cover search knows about one fragment when asking for
/// its cost: the reformulated union plus the fragment's *cover query*
/// shape (original atoms and each atom's singleton reformulation),
/// enabling overlap-aware cardinality estimation.
pub struct FragmentCostInput<'x> {
    /// The fragment's atom indices (a stable cache key).
    pub key: &'x [usize],
    /// The fragment's reformulated UCQ.
    pub ucq: &'x StoreUcq,
    /// The cover query's body atoms, aligned with `key`.
    pub template_atoms: &'x [StorePattern],
    /// Per original atom, its singleton reformulation UCQ.
    pub atom_singletons: Vec<&'x StoreUcq>,
}

/// A whole cover's cost-estimation inputs.
pub struct CoverCostInputs<'x> {
    /// The query head.
    pub head: &'x [VarId],
    /// One input per fragment.
    pub fragments: Vec<FragmentCostInput<'x>>,
}

/// Estimates the evaluation cost of a JUCQ (lower is better).
pub trait JucqCostEstimator {
    /// The estimated cost, in arbitrary but consistent units.
    fn estimate(&self, jucq: &StoreJucq) -> f64;

    /// Cover-aware estimation; the default materializes the JUCQ and
    /// delegates to [`JucqCostEstimator::estimate`].
    fn estimate_cover(&self, inputs: &CoverCostInputs<'_>) -> f64 {
        let jucq = StoreJucq::new(
            inputs.fragments.iter().map(|f| f.ucq.clone()).collect(),
            inputs.head.to_vec(),
        );
        self.estimate(&jucq)
    }
}

impl JucqCostEstimator for PaperCostModel<'_> {
    fn estimate(&self, jucq: &StoreJucq) -> f64 {
        self.cost(jucq)
    }

    fn estimate_cover(&self, inputs: &CoverCostInputs<'_>) -> f64 {
        let comps: Vec<crate::cost::FragComponents> = inputs
            .fragments
            .iter()
            .map(|f| {
                // Unioned per-atom extents: the scan volume of each
                // atom's singleton reformulation.
                let extents: Vec<f64> =
                    f.atom_singletons.iter().map(|u| self.ucq_scan_volume(u)).collect();
                self.fragment_components_cached(f.ucq, Some((f.template_atoms, &extents)))
            })
            .collect();
        self.combine(&comps)
    }
}

/// The engine's internal cost estimator (the paper's "RDBMS cost
/// estimation" alternative of Figure 9).
pub struct EngineCostModel<'a> {
    store: &'a Store,
}

impl<'a> EngineCostModel<'a> {
    /// Bind to a store (profile + statistics).
    pub fn new(store: &'a Store) -> Self {
        EngineCostModel { store }
    }
}

impl JucqCostEstimator for EngineCostModel<'_> {
    fn estimate(&self, jucq: &StoreJucq) -> f64 {
        internal_cost::estimate(self.store, jucq)
    }
}

/// A cached fragment reformulation: the UCQ, or `None` when it blew the
/// materialization limit (treated as infinitely expensive).
type FragmentEntry = Option<Arc<StoreUcq>>;

/// Cache key for a reformulated cover query: its atoms *and* head
/// (Definition 3.4 heads vary with the cover for overlapping covers, so
/// atom indices alone would alias distinct queries).
type FragmentKey = (Vec<jucq_store::StorePattern>, Vec<VarId>);

/// The search context shared by ECov and GCov.
pub struct CoverSearch<'a> {
    query: &'a BgpQuery,
    env: ReformulationEnv<'a>,
    estimator: &'a (dyn JucqCostEstimator + Sync),
    /// Cap on the number of member CQs materialized per fragment; a
    /// fragment beyond it costs `+∞` (no engine accepts it anyway).
    reformulation_limit: usize,
    /// The engine's union-term limit: covers whose fragments sum past
    /// it are infeasible (the engine would reject the JUCQ at
    /// admission), so they cost `+∞` and the search routes around them.
    union_limit: usize,
    /// Worker threads for batch cover scoring ([`CoverSearch::cover_costs`]).
    parallelism: usize,
    /// Fragment memos are read far more often than written (repeated
    /// fragments across candidate covers): `RwLock` keeps the hot hit
    /// path a shared, non-exclusive read usable from scoring workers.
    cache: RwLock<FxHashMap<FragmentKey, FragmentEntry>>,
    /// Per-fragment standalone cost memo (the GCov redundancy-pruning
    /// order re-asks the same fragments constantly).
    cost_cache: RwLock<FxHashMap<FragmentKey, f64>>,
    /// Covers whose cost was estimated so far (the "number of query
    /// covers explored" of Figures 7–8).
    explored: AtomicUsize,
}

/// The outcome of a cover search.
#[derive(Debug, Clone)]
pub struct CoverSearchResult {
    /// The best cover found.
    pub cover: Cover,
    /// Its estimated cost.
    pub estimated_cost: f64,
    /// Number of covers whose cost was estimated.
    pub explored: usize,
    /// Search wall-clock time.
    pub elapsed: Duration,
    /// True iff the search gave up (timeout / space cap) before
    /// finishing; the result is still the best cover seen (ECov and
    /// GCov are anytime).
    pub truncated: bool,
}

impl<'a> CoverSearch<'a> {
    /// Create a search context.
    pub fn new(
        query: &'a BgpQuery,
        env: ReformulationEnv<'a>,
        estimator: &'a (dyn JucqCostEstimator + Sync),
    ) -> Self {
        CoverSearch {
            query,
            env,
            estimator,
            reformulation_limit: 400_000,
            union_limit: usize::MAX,
            parallelism: 1,
            cache: RwLock::new(FxHashMap::default()),
            cost_cache: RwLock::new(FxHashMap::default()),
            explored: AtomicUsize::new(0),
        }
    }

    /// Override the per-fragment reformulation cap.
    pub fn with_reformulation_limit(mut self, limit: usize) -> Self {
        self.reformulation_limit = limit;
        self
    }

    /// Declare the target engine's union-term limit (admission control);
    /// infeasible covers then cost `+∞`. Also caps per-fragment
    /// reformulation at `limit + 1` members: a fragment alone exceeding
    /// the engine limit need never be materialized further.
    pub fn with_union_limit(mut self, limit: usize) -> Self {
        self.union_limit = limit;
        self.reformulation_limit = self.reformulation_limit.min(limit.saturating_add(1));
        self
    }

    /// Use up to `threads` workers for batch cover scoring.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// The configured scoring parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The query under optimization.
    pub fn query(&self) -> &BgpQuery {
        self.query
    }

    /// Number of covers costed so far.
    pub fn explored(&self) -> usize {
        self.explored.load(Ordering::Relaxed)
    }

    /// The (cached) UCQ reformulation of one cover query.
    pub fn fragment_ucq(&self, cq: &BgpQuery) -> FragmentEntry {
        let key: FragmentKey = (cq.atoms.clone(), cq.head.clone());
        if let Some(hit) = self.cache.read().expect("cache lock").get(&key) {
            jucq_obs::metrics::counter_add("cover_search.reformulation_cache.hits", 1);
            return hit.clone();
        }
        jucq_obs::metrics::counter_add("cover_search.reformulation_cache.misses", 1);
        let entry = match reformulate_with_limit(cq, &self.env, self.reformulation_limit) {
            Ok(ucq) => Some(Arc::new(ucq)),
            Err(_) => None,
        };
        // Two workers may race to fill the same key; both compute the
        // same value, so last-write-wins is harmless.
        self.cache.write().expect("cache lock").insert(key, entry.clone());
        entry
    }

    /// Assemble the JUCQ reformulation for a cover from cached
    /// fragments. `None` if any fragment exceeds the limit.
    pub fn jucq_for(&self, cover: &Cover) -> Option<StoreJucq> {
        let mut fragments = Vec::with_capacity(cover.len());
        for cq in cover.cover_queries(self.query) {
            fragments.push(self.fragment_ucq(&cq)?.as_ref().clone());
        }
        Some(StoreJucq::new(fragments, self.query.head.clone()))
    }

    /// Estimated cost of a cover's JUCQ (`+∞` when un-materializable).
    /// Each call counts as one explored cover.
    pub fn cover_cost(&self, cover: &Cover) -> f64 {
        jucq_obs::span!("cost_estimation");
        self.explored.fetch_add(1, Ordering::Relaxed);
        let fragments = cover.fragments();
        let cover_queries = cover.cover_queries(self.query);
        // Resolve every fragment UCQ and the per-atom singleton
        // reformulations first; any over-limit fragment makes the cover
        // infeasible. Singleton *extent* queries use all-variable heads
        // (extent sums are head-insensitive; one cache entry per atom).
        let mut frag_ucqs: Vec<Arc<StoreUcq>> = Vec::with_capacity(fragments.len());
        let mut singleton_ucqs: Vec<Vec<Arc<StoreUcq>>> = Vec::with_capacity(fragments.len());
        let mut total_terms = 0usize;
        for (f, cq) in fragments.iter().zip(&cover_queries) {
            let Some(ucq) = self.fragment_ucq(cq) else {
                return f64::INFINITY;
            };
            total_terms += ucq.len();
            if total_terms > self.union_limit {
                // The engine would reject this JUCQ at admission.
                return f64::INFINITY;
            }
            frag_ucqs.push(ucq);
            let mut singles = Vec::with_capacity(f.len());
            for &i in f {
                let atom = self.query.atoms[i];
                let extent_q = BgpQuery::new(atom.variables().to_vec(), vec![atom]);
                let Some(s) = self.fragment_ucq(&extent_q) else {
                    return f64::INFINITY;
                };
                singles.push(s);
            }
            singleton_ucqs.push(singles);
        }
        let inputs = CoverCostInputs {
            head: &self.query.head,
            fragments: fragments
                .iter()
                .enumerate()
                .map(|(i, f)| FragmentCostInput {
                    key: f.as_slice(),
                    ucq: frag_ucqs[i].as_ref(),
                    template_atoms: &cover_queries[i].atoms,
                    atom_singletons: singleton_ucqs[i].iter().map(Arc::as_ref).collect(),
                })
                .collect(),
        };
        self.estimator.estimate_cover(&inputs)
    }

    /// Cost of a single fragment's reformulated UCQ alone (used by the
    /// redundancy pruning order in GCov). Uses the complement-context
    /// head — adequate for ordering. Memoized: candidate covers repeat
    /// the same fragments constantly, so each is costed once.
    pub fn fragment_cost(&self, fragment: &[usize]) -> f64 {
        let cq = self.query.cover_query(fragment);
        let key: FragmentKey = (cq.atoms.clone(), cq.head.clone());
        if let Some(&hit) = self.cost_cache.read().expect("cost cache lock").get(&key) {
            jucq_obs::metrics::counter_add("cover_search.fragment_cost_cache.hits", 1);
            return hit;
        }
        jucq_obs::metrics::counter_add("cover_search.fragment_cost_cache.misses", 1);
        let cost = match self.fragment_ucq(&cq) {
            Some(ucq) => {
                let head = ucq.head.clone();
                let jucq = StoreJucq::new(vec![ucq.as_ref().clone()], head);
                self.estimator.estimate(&jucq)
            }
            None => f64::INFINITY,
        };
        self.cost_cache.write().expect("cost cache lock").insert(key, cost);
        cost
    }

    /// Score a batch of covers, in input order, using up to the
    /// configured parallelism worker threads. Scheduling only changes
    /// *when* each cover is costed, never its cost (estimators are pure
    /// functions of the statistics), so callers folding the returned
    /// vector in order make exactly the sequential decisions.
    pub fn cover_costs(&self, covers: &[Cover]) -> Vec<f64> {
        // On single-core hardware scoring workers are pure overhead —
        // take the sequential path outright, mirroring the executor's
        // `eval_unions` gate.
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = if hw <= 1 { 1 } else { self.parallelism.min(covers.len()) };
        if workers <= 1 {
            return covers.iter().map(|c| self.cover_cost(c)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut costs = vec![f64::INFINITY; covers.len()];
        let scored: Vec<Vec<(usize, f64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= covers.len() {
                                break;
                            }
                            out.push((i, self.cover_cost(&covers[i])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scoring worker panicked")).collect()
        });
        for (i, c) in scored.into_iter().flatten() {
            costs[i] = c;
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostConstants;
    use jucq_model::{Graph, Term, TermId, Triple};
    use jucq_store::{EngineProfile, PatternTerm, StorePattern};

    struct Fixture {
        graph: Graph,
        rdf_type: TermId,
        store: Store,
    }

    fn fixture() -> Fixture {
        let mut graph = Graph::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        graph.extend(&[
            t("b1", jucq_model::vocab::RDF_TYPE, Term::uri("Book")),
            t("b1", "writtenBy", Term::uri("a1")),
            t("b2", "writtenBy", Term::uri("a1")),
            t("Book", jucq_model::vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", jucq_model::vocab::RDFS_DOMAIN, Term::uri("Book")),
        ]);
        let rdf_type = graph.rdf_type();
        let store = Store::from_triples(graph.data(), EngineProfile::pg_like());
        Fixture { graph, rdf_type, store }
    }

    fn query(f: &Fixture) -> BgpQuery {
        let ty = f.rdf_type;
        let written_by = f.graph.dict().lookup(&Term::uri("writtenBy")).unwrap();
        let book = f.graph.dict().lookup(&Term::uri("Book")).unwrap();
        BgpQuery::new(
            vec![0, 1],
            vec![
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(ty),
                    PatternTerm::Const(book),
                ),
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(written_by),
                    PatternTerm::Var(1),
                ),
            ],
        )
    }

    #[test]
    fn fragment_cache_hits() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = query(&f);
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let cq = q.cover_query(&[0]);
        let a = search.fragment_ucq(&cq).unwrap();
        let b = search.fragment_ucq(&cq).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a cache hit");
    }

    #[test]
    fn fragment_cost_is_memoized() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = query(&f);
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let a = search.fragment_cost(&[0]);
        let b = search.fragment_cost(&[0]);
        assert_eq!(a.to_bits(), b.to_bits(), "memo returns the identical cost");
        assert_eq!(search.cost_cache.read().unwrap().len(), 1);
    }

    #[test]
    fn parallel_cover_costs_match_sequential_order() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = query(&f);
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let covers = vec![Cover::single_fragment(&q).unwrap(), Cover::singletons(&q).unwrap()];
        let seq_search = CoverSearch::new(&q, env, &model);
        let seq: Vec<f64> = covers.iter().map(|c| seq_search.cover_cost(c)).collect();
        let par_search = CoverSearch::new(&q, env, &model).with_parallelism(4);
        let par = par_search.cover_costs(&covers);
        let bits = |v: &[f64]| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&seq), bits(&par), "costs identical and in input order");
        assert_eq!(par_search.explored(), 2);
    }

    #[test]
    fn cover_cost_counts_explorations() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = query(&f);
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let c1 = Cover::single_fragment(&q).unwrap();
        let c2 = Cover::singletons(&q).unwrap();
        let cost1 = search.cover_cost(&c1);
        let cost2 = search.cover_cost(&c2);
        assert!(cost1.is_finite() && cost2.is_finite());
        assert_eq!(search.explored(), 2);
    }

    #[test]
    fn limit_makes_cover_infinite() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = query(&f);
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model).with_reformulation_limit(1);
        let c1 = Cover::single_fragment(&q).unwrap();
        assert!(search.cover_cost(&c1).is_infinite());
    }

    #[test]
    fn engine_estimator_works_too() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = query(&f);
        let model = EngineCostModel::new(&f.store);
        let search = CoverSearch::new(&q, env, &model);
        let cost = search.cover_cost(&Cover::singletons(&q).unwrap());
        assert!(cost.is_finite() && cost > 0.0);
    }
}
