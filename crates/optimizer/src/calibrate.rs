//! Calibration of the cost-model constants (§4.1, §5.1).
//!
//! "For each RDBMS, we instantiated the cost formulas introduced in
//! Section 4.1 with the proper coefficients, learned by running our
//! calibration queries on that system."
//!
//! The calibration workload measures, on the *actual* store under its
//! *actual* profile:
//!
//! 1. a no-match point query        → `c_db` (fixed overhead);
//! 2. two single-pattern scans of different sizes → the per-tuple
//!    scan+dedup slope, split between `c_t` and `c_l`;
//! 3. a two-atom join               → `c_j` (per input tuple);
//! 4. a two-fragment JUCQ           → `c_m` (per materialized tuple).
//!
//! `c_k` (disk-sort dedup) is derived from `c_l` — in-process sorting
//! is roughly log-factor-scaled hashing. The splits are heuristic;
//! what the optimizer needs is the *relative* order of cover costs,
//! which the slopes capture.

use std::time::Instant;

use jucq_store::{PatternTerm, Statistics, Store, StoreCq, StoreJucq, StorePattern, StoreUcq};

use crate::cost::CostConstants;

/// Calibration predicates: the most and least frequent (well-separated
/// scan extents), plus a mid-size one (extent nearest 3 000) for the
/// fragment-join measurement — large enough for the join algorithms to
/// differ, small enough that even a quadratic join finishes promptly.
fn calibration_predicates(
    store: &Store,
) -> Option<(jucq_model::TermId, jucq_model::TermId, jucq_model::TermId)> {
    let table = store.table();
    let mut preds: Vec<(usize, jucq_model::TermId)> = Vec::new();
    let mut seen = jucq_model::FxHashSet::default();
    for t in table.all() {
        if seen.insert(t.p) {
            preds.push((table.count(&[None, Some(t.p), None]), t.p));
        }
    }
    preds.sort_unstable();
    let &(_, small) = preds.first()?;
    let &(_, large) = preds.last()?;
    let &(_, mid) = preds.iter().min_by_key(|(n, _)| n.abs_diff(3_000)).expect("non-empty");
    Some((large, small, mid))
}

fn time_jucq(store: &Store, q: &StoreJucq, repeats: u32) -> f64 {
    // Warm-up run, then the average of `repeats` (the paper averages
    // over 3 warm executions).
    let _ = store.eval_jucq(q);
    let started = Instant::now();
    for _ in 0..repeats {
        let _ = store.eval_jucq(q);
    }
    started.elapsed().as_secs_f64() / f64::from(repeats)
}

/// Learn cost constants for `store` under its current profile.
/// Falls back to [`CostConstants::default`] on degenerate stores
/// (empty, or a single predicate).
pub fn calibrate(store: &Store) -> CostConstants {
    let mut out = CostConstants::default();
    let Some((big_pred, small_pred, join_pred)) = calibration_predicates(store) else {
        return out;
    };
    let table = store.table();
    let stats: &Statistics = store.stats();
    let _ = stats;

    let scan_q = |p: jucq_model::TermId| -> StoreJucq {
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(p),
                PatternTerm::Var(1),
            )],
            vec![0, 1],
        );
        StoreJucq::from_ucq(StoreUcq::new(vec![cq], vec![0, 1]))
    };

    let n_big = table.count(&[None, Some(big_pred), None]) as f64;
    let n_small = table.count(&[None, Some(small_pred), None]) as f64;

    // (1) c_db: a query whose extent is empty in O(log n).
    let missing = {
        // A (s, p, o) combination guaranteed absent: swap a subject in
        // as the property of the small predicate's first triple.
        let cq = StoreCq::with_var_head(
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(big_pred),
                PatternTerm::Const(big_pred),
            )],
            vec![0],
        );
        StoreJucq::from_ucq(StoreUcq::new(vec![cq], vec![0]))
    };
    let t_db = time_jucq(store, &missing, 5);
    out.c_db = t_db.max(1e-9);

    // (2) per-tuple scan slope from two scans.
    if n_big > n_small && n_big > 0.0 {
        let t_big = time_jucq(store, &scan_q(big_pred), 3);
        let t_small = time_jucq(store, &scan_q(small_pred), 3);
        let slope = ((t_big - t_small) / (n_big - n_small)).max(1e-10);
        // The scan pipeline touches each tuple ~once for the scan and
        // ~twice for dedup (union + final); split accordingly.
        out.c_t = slope / 3.0;
        out.c_l = slope / 3.0;
        out.c_k = out.c_l / 8.0;
    }

    // (3) c_j from a *fragment-level* join of two big scans — the
    // operation where the emulated engines genuinely differ (hash vs
    // sort-merge vs block-nested-loop, and the materialize-all-unions
    // policy). This is what makes the learned constants per-engine, as
    // the paper requires: a nested-loop engine calibrates a c_j orders
    // of magnitude larger, steering the optimizer toward covers with
    // small fragment results on that engine.
    {
        let scan_frag = |obj_var: u16| {
            StoreUcq::new(
                vec![StoreCq::with_var_head(
                    vec![StorePattern::new(
                        PatternTerm::Var(0),
                        PatternTerm::Const(join_pred),
                        PatternTerm::Var(obj_var),
                    )],
                    vec![0, obj_var],
                )],
                vec![0, obj_var],
            )
        };
        let n_join = table.count(&[None, Some(join_pred), None]) as f64;
        let t_scan = time_jucq(store, &StoreJucq::from_ucq(scan_frag(1)), 3);
        let q = StoreJucq::new(vec![scan_frag(1), scan_frag(2)], vec![0]);
        let t_join = time_jucq(store, &q, 3);
        let inputs = (2.0 * n_join).max(1.0);
        let extra = (t_join - 2.0 * t_scan - out.c_db).max(0.0);
        out.c_j = (extra / inputs).max(out.c_t * 0.1).max(1e-10);
    }
    // A collapsed range scan streams the same tuples without the
    // per-member union setup or dedup pressure — price it at a quarter
    // of the per-member rate, mirroring the defaults' ratio.
    out.c_range = (out.c_t + out.c_j) / 4.0;

    // (4) c_m from a two-fragment JUCQ of the same atoms, as the
    // *difference* to the single-CQ plan (the extra work is the
    // materialization of the smaller fragment plus per-fragment
    // dedup). The measurement is noisy at calibration scale, so the
    // result is clamped to a plausible multiple of the scan cost — a
    // materialized copy costs about as much as a scan.
    {
        let one_cq = StoreCq::with_var_head(
            vec![
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(big_pred),
                    PatternTerm::Var(1),
                ),
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(small_pred),
                    PatternTerm::Var(2),
                ),
            ],
            vec![0],
        );
        let q_one = StoreJucq::from_ucq(StoreUcq::new(vec![one_cq], vec![0]));
        let t_one = time_jucq(store, &q_one, 3);
        let fa = StoreUcq::new(
            vec![StoreCq::with_var_head(
                vec![StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(big_pred),
                    PatternTerm::Var(1),
                )],
                vec![0],
            )],
            vec![0],
        );
        let fb = StoreUcq::new(
            vec![StoreCq::with_var_head(
                vec![StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(small_pred),
                    PatternTerm::Var(2),
                )],
                vec![0],
            )],
            vec![0],
        );
        let q = StoreJucq::new(vec![fa, fb], vec![0]);
        let t_two = time_jucq(store, &q, 3);
        let extra_tuples = (n_big + n_small).max(1.0);
        let raw = (t_two - t_one).max(0.0) / extra_tuples;
        out.c_m = raw.clamp(out.c_t * 0.25, out.c_t * 3.0);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::{TermId, TripleId};
    use jucq_store::EngineProfile;

    fn id(i: u32) -> TermId {
        TermId::new(TermKind::Uri, i)
    }

    fn store() -> Store {
        let mut triples = Vec::new();
        for i in 0..5000u32 {
            triples.push(TripleId::new(id(i), id(1_000_000), id(i % 97)));
        }
        for i in 0..50u32 {
            triples.push(TripleId::new(id(i), id(1_000_001), id(7)));
        }
        Store::from_triples(&triples, EngineProfile::pg_like())
    }

    #[test]
    fn calibration_yields_positive_constants() {
        let c = calibrate(&store());
        assert!(c.c_db > 0.0);
        assert!(c.c_t > 0.0);
        assert!(c.c_j > 0.0);
        assert!(c.c_m > 0.0);
        assert!(c.c_l > 0.0);
        assert!(c.c_k > 0.0);
    }

    #[test]
    fn empty_store_falls_back_to_defaults() {
        let s = Store::from_triples(&[], EngineProfile::pg_like());
        assert_eq!(calibrate(&s), CostConstants::default());
    }

    #[test]
    fn predicates_picked_by_extent() {
        let s = store();
        let (big, small, _mid) = calibration_predicates(&s).unwrap();
        assert_eq!(big, id(1_000_000));
        assert_eq!(small, id(1_000_001));
    }
}
