//! ECov — the exhaustive query cover algorithm (§4.2).
//!
//! "As a yardstick for the quality of the query covers we find, we
//! developed an exhaustive query cover finding algorithm ... that
//! traverses the search space of reformulated queries and outputs a
//! query cover leading to a cover-based reformulation with lowest
//! cost." ECov enumerates every valid cover (Definition 3.3 plus
//! fragment connectivity), estimates each one's cost, and returns the
//! cheapest. Like the paper's ECov — which "times out while exploring
//! (exhaustively) the huge query covers search space" of the 10-atom
//! DBLP Q10 — the enumeration is bounded by a wall-clock budget and a
//! state cap, and is *anytime*: the best cover seen so far is returned
//! with `truncated = true`.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use jucq_model::FxHashSet;
use jucq_reformulation::{Cover, CoverError};

use crate::search::{CoverSearch, CoverSearchResult};

/// Hard cap on enumeration states, protecting against combinatorial
/// blowup even under a generous time budget.
const STATE_CAP: usize = 2_000_000;

/// All connected subsets of the query's atoms, as bitmasks.
fn connected_subsets(search: &CoverSearch<'_>) -> Vec<u32> {
    let q = search.query();
    let n = q.len();
    assert!(n <= 30, "ECov enumeration supports up to 30 atoms");
    let mut adjacency: Vec<u32> = vec![0; n];
    for (i, adj) in adjacency.iter_mut().enumerate() {
        for j in 0..n {
            if i != j && q.atoms_join(i, j) {
                *adj |= 1 << j;
            }
        }
    }
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut frontier: Vec<u32> = (0..n).map(|i| 1u32 << i).collect();
    for &m in &frontier {
        seen.insert(m);
    }
    while let Some(mask) = frontier.pop() {
        let mut reach: u32 = 0;
        for (i, adj) in adjacency.iter().enumerate() {
            if mask & (1 << i) != 0 {
                reach |= adj;
            }
        }
        let candidates = reach & !mask;
        for j in 0..n {
            if candidates & (1 << j) != 0 {
                let next = mask | (1 << j);
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
    }
    let mut out: Vec<u32> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

fn mask_to_vec(mask: u32) -> Vec<usize> {
    (0..32).filter(|i| mask & (1 << i) != 0).collect()
}

/// Run ECov: exhaustively enumerate covers and return the cheapest.
///
/// A query with no valid cover at all — a disconnected body — returns
/// the [`CoverError`] from the single-fragment fallback instead of
/// panicking.
pub fn ecov(search: &CoverSearch<'_>, budget: Duration) -> Result<CoverSearchResult, CoverError> {
    jucq_obs::span!("cover_search");
    let started = Instant::now();
    let q = search.query();
    let n = q.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let subsets = connected_subsets(search);

    let mut best: Option<(Cover, f64)> = None;
    let mut completed: FxHashSet<BTreeSet<u32>> = FxHashSet::default();
    let mut states = 0usize;
    let mut truncated = false;

    // Complete covers are batched (in discovery order) and scored by
    // the search's worker pool; folding the in-order costs with the
    // same strict `<` keeps the selected cover identical to scoring
    // each cover inline at discovery.
    let batch_cap = (search.parallelism() * 8).max(32);
    let mut pending: Vec<Cover> = Vec::new();
    let flush = |pending: &mut Vec<Cover>, best: &mut Option<(Cover, f64)>| {
        if pending.is_empty() {
            return;
        }
        let costs = search.cover_costs(pending);
        for (cover, cost) in pending.drain(..).zip(costs) {
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                *best = Some((cover, cost));
            }
        }
    };

    // DFS state: chosen fragments (antichain) + covered mask.
    let mut stack: Vec<(Vec<u32>, u32)> = vec![(Vec::new(), 0)];
    while let Some((chosen, covered)) = stack.pop() {
        states += 1;
        if states > STATE_CAP || started.elapsed() > budget {
            truncated = true;
            break;
        }
        if covered == full {
            let key: BTreeSet<u32> = chosen.iter().copied().collect();
            if !completed.insert(key) {
                continue;
            }
            let frags: Vec<Vec<usize>> = chosen.iter().map(|&m| mask_to_vec(m)).collect();
            let Ok(cover) = Cover::new(q, frags) else {
                continue;
            };
            pending.push(cover);
            if pending.len() >= batch_cap {
                flush(&mut pending, &mut best);
            }
            continue;
        }
        // Cover the lowest uncovered atom.
        let target = (!covered & full).trailing_zeros();
        for &frag in &subsets {
            if frag & (1 << target) == 0 {
                continue;
            }
            // Maintain the antichain property (no fragment included in
            // another).
            if chosen.iter().any(|&c| (c & frag) == c || (c & frag) == frag) {
                continue;
            }
            let mut next = chosen.clone();
            next.push(frag);
            stack.push((next, covered | frag));
        }
    }

    // Score whatever the DFS discovered before completing (or being
    // truncated): the search stays anytime.
    flush(&mut pending, &mut best);

    let (cover, estimated_cost) = match best {
        Some(found) => found,
        None => {
            // Degenerate fallback: the single-fragment cover exists for
            // every connected query; a disconnected one has no valid
            // cover, and the error propagates.
            let cover = Cover::single_fragment(q)?;
            let cost = search.cover_cost(&cover);
            (cover, cost)
        }
    };
    Ok(CoverSearchResult {
        cover,
        estimated_cost,
        explored: search.explored(),
        elapsed: started.elapsed(),
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostConstants, PaperCostModel};
    use jucq_model::{Graph, Term, TermId, Triple};
    use jucq_reformulation::reformulate::ReformulationEnv;
    use jucq_reformulation::BgpQuery;
    use jucq_store::{EngineProfile, PatternTerm, Store, StorePattern};

    struct Fixture {
        graph: Graph,
        rdf_type: TermId,
        store: Store,
    }

    fn fixture() -> Fixture {
        let mut graph = Graph::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let mut triples = vec![
            t("P", jucq_model::vocab::RDFS_SUBCLASS_OF, Term::uri("Q")),
            t("p1", jucq_model::vocab::RDFS_DOMAIN, Term::uri("P")),
        ];
        for i in 0..20 {
            triples.push(t(&format!("s{i}"), "p1", Term::uri(format!("o{i}"))));
            triples.push(t(&format!("s{i}"), "p2", Term::uri("hub")));
        }
        graph.extend(&triples);
        let rdf_type = graph.rdf_type();
        let store = Store::from_triples(graph.data(), EngineProfile::pg_like());
        Fixture { graph, rdf_type, store }
    }

    fn star_query(f: &Fixture, arms: usize) -> BgpQuery {
        let p1 = f.graph.dict().lookup(&Term::uri("p1")).unwrap();
        let p2 = f.graph.dict().lookup(&Term::uri("p2")).unwrap();
        let atoms = (0..arms)
            .map(|i| {
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(if i % 2 == 0 { p1 } else { p2 }),
                    PatternTerm::Var((i + 1) as u16),
                )
            })
            .collect();
        BgpQuery::new(vec![0], atoms)
    }

    fn run(f: &Fixture, q: &BgpQuery, budget: Duration) -> CoverSearchResult {
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(q, env, &model);
        ecov(&search, budget).unwrap()
    }

    #[test]
    fn single_atom_query_has_one_cover() {
        let f = fixture();
        let q = star_query(&f, 1);
        let r = run(&f, &q, Duration::from_secs(5));
        assert_eq!(r.cover.len(), 1);
        assert!(!r.truncated);
        assert_eq!(r.explored, 1);
    }

    #[test]
    fn two_atom_query_explores_both_extremes() {
        let f = fixture();
        let q = star_query(&f, 2);
        let r = run(&f, &q, Duration::from_secs(5));
        // Covers of 2 connected atoms: {{0,1}}, {{0},{1}} and the
        // overlapping {{0,1}} variants; at least the two extremes.
        assert!(r.explored >= 2, "explored {}", r.explored);
        assert!(r.estimated_cost.is_finite());
        assert!(!r.truncated);
    }

    #[test]
    fn explored_counts_grow_with_atoms() {
        let f = fixture();
        let small = run(&f, &star_query(&f, 2), Duration::from_secs(5)).explored;
        let large = run(&f, &star_query(&f, 4), Duration::from_secs(5)).explored;
        assert!(large > small, "4-atom space ({large}) larger than 2-atom ({small})");
    }

    #[test]
    fn best_cover_is_cheapest_explored() {
        let f = fixture();
        let q = star_query(&f, 3);
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        let r = ecov(&search, Duration::from_secs(5)).unwrap();
        // Re-costing the returned cover must reproduce the reported cost.
        let recost = search.cover_cost(&r.cover);
        assert!((recost - r.estimated_cost).abs() < 1e-9);
        // And it must beat (or tie) the two fixed extremes.
        let ucq_cost = search.cover_cost(&Cover::single_fragment(&q).unwrap());
        let scq_cost = search.cover_cost(&Cover::singletons(&q).unwrap());
        assert!(r.estimated_cost <= ucq_cost + 1e-9);
        assert!(r.estimated_cost <= scq_cost + 1e-9);
    }

    #[test]
    fn zero_budget_truncates_but_returns() {
        let f = fixture();
        let q = star_query(&f, 4);
        let r = run(&f, &q, Duration::from_millis(0));
        assert!(r.truncated);
        assert!(r.estimated_cost.is_finite());
    }

    #[test]
    fn connected_subsets_of_a_path() {
        // Path query x-p-y-p-z: subsets {0},{1},{0,1} ⇒ 3.
        let f = fixture();
        let p1 = f.graph.dict().lookup(&Term::uri("p1")).unwrap();
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(PatternTerm::Var(0), PatternTerm::Const(p1), PatternTerm::Var(1)),
                StorePattern::new(PatternTerm::Var(1), PatternTerm::Const(p1), PatternTerm::Var(2)),
            ],
        );
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let model = PaperCostModel::new(f.store.table(), f.store.stats(), CostConstants::default());
        let search = CoverSearch::new(&q, env, &model);
        assert_eq!(connected_subsets(&search), vec![0b01, 0b10, 0b11]);
    }
}
