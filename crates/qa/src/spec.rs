//! Compact textual specs for generated cases.
//!
//! A case is written as three string lists — triples, query atoms, and
//! head variables — small enough to paste into a regression test:
//!
//! ```text
//! triples: "C1 sc C0"   "p1 sp p0"   "p1 dom C0"   "i0 a C1"
//!          "i0 p1 i2"   "i0 p1 \"v0\""
//! atoms:   "?v0 p0 ?v1" "?v0 a C1"   "?v0 ?v2 \"v0\""
//! head:    "?v0"
//! ```
//!
//! Predicate shorthands: `a` → `rdf:type`, `sc` → `rdfs:subClassOf`,
//! `sp` → `rdfs:subPropertyOf`, `dom` → `rdfs:domain`, `rng` →
//! `rdfs:range`. `?vN` is variable `N`; a double-quoted token is a
//! literal; anything else is a URI.

use jucq_model::{vocab, Term, Triple};

use crate::gen::{AtomSpec, GenCase, QTerm, QuerySpec};

fn expand_predicate(tok: &str) -> Option<&'static str> {
    match tok {
        "a" => Some(vocab::RDF_TYPE),
        "sc" => Some(vocab::RDFS_SUBCLASS_OF),
        "sp" => Some(vocab::RDFS_SUBPROPERTY_OF),
        "dom" => Some(vocab::RDFS_DOMAIN),
        "rng" => Some(vocab::RDFS_RANGE),
        _ => None,
    }
}

fn shorten_predicate(uri: &str) -> Option<&'static str> {
    match uri {
        vocab::RDF_TYPE => Some("a"),
        vocab::RDFS_SUBCLASS_OF => Some("sc"),
        vocab::RDFS_SUBPROPERTY_OF => Some("sp"),
        vocab::RDFS_DOMAIN => Some("dom"),
        vocab::RDFS_RANGE => Some("rng"),
        _ => None,
    }
}

/// Parse one token into a constant term; `predicate` enables the
/// schema shorthands.
fn parse_term(tok: &str, predicate: bool) -> Term {
    if predicate {
        if let Some(uri) = expand_predicate(tok) {
            return Term::uri(uri);
        }
    }
    if let Some(stripped) = tok.strip_prefix('"') {
        return Term::literal(stripped.strip_suffix('"').unwrap_or(stripped));
    }
    Term::uri(tok)
}

/// Parse `?vN` to `N`. Panics on malformed input — specs are authored
/// by `to_spec`, not end users.
fn parse_var(tok: &str) -> u16 {
    tok.strip_prefix("?v")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("malformed variable token {tok:?} (expected ?v<N>)"))
}

fn parse_qterm(tok: &str, predicate: bool) -> QTerm {
    if tok.starts_with('?') {
        QTerm::Var(parse_var(tok))
    } else {
        QTerm::Term(parse_term(tok, predicate))
    }
}

fn term_token(t: &Term, predicate: bool) -> String {
    match t {
        Term::Uri(u) => {
            if predicate {
                if let Some(short) = shorten_predicate(u) {
                    return short.to_string();
                }
            }
            u.clone()
        }
        Term::Literal(l) => format!("\"{l}\""),
        Term::Blank(b) => format!("_:{b}"),
    }
}

fn qterm_token(t: &QTerm, predicate: bool) -> String {
    match t {
        QTerm::Var(v) => format!("?v{v}"),
        QTerm::Term(t) => term_token(t, predicate),
    }
}

fn split3(line: &str) -> (&str, &str, &str) {
    let mut it = line.split_whitespace();
    match (it.next(), it.next(), it.next(), it.next()) {
        (Some(s), Some(p), Some(o), None) => (s, p, o),
        _ => panic!("spec line {line:?} is not exactly three tokens"),
    }
}

impl GenCase {
    /// Build a case from its textual spec (the inverse of
    /// [`GenCase::to_spec`]).
    pub fn from_spec(triples: &[&str], atoms: &[&str], head: &[&str]) -> GenCase {
        let triples = triples
            .iter()
            .map(|line| {
                let (s, p, o) = split3(line);
                Triple::new(parse_term(s, false), parse_term(p, true), parse_term(o, false))
            })
            .collect();
        let atoms = atoms
            .iter()
            .map(|line| {
                let (s, p, o) = split3(line);
                AtomSpec {
                    s: parse_qterm(s, false),
                    p: parse_qterm(p, true),
                    o: parse_qterm(o, false),
                }
            })
            .collect();
        let head = head.iter().map(|tok| parse_var(tok)).collect();
        GenCase { triples, query: QuerySpec { head, atoms } }
    }

    /// Render the case as (triples, atoms, head) spec lines.
    pub fn to_spec(&self) -> (Vec<String>, Vec<String>, Vec<String>) {
        let triples = self
            .triples
            .iter()
            .map(|t| {
                format!(
                    "{} {} {}",
                    term_token(&t.s, false),
                    term_token(&t.p, true),
                    term_token(&t.o, false)
                )
            })
            .collect();
        let atoms = self
            .query
            .atoms
            .iter()
            .map(|a| {
                format!(
                    "{} {} {}",
                    qterm_token(&a.s, false),
                    qterm_token(&a.p, true),
                    qterm_token(&a.o, false)
                )
            })
            .collect();
        let head = self.query.head.iter().map(|v| format!("?v{v}")).collect();
        (triples, atoms, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn spec_round_trips_generated_cases() {
        for seed in 0..200u64 {
            let case = gen_case(seed);
            let (t, a, h) = case.to_spec();
            let t: Vec<&str> = t.iter().map(String::as_str).collect();
            let a: Vec<&str> = a.iter().map(String::as_str).collect();
            let h: Vec<&str> = h.iter().map(String::as_str).collect();
            let back = GenCase::from_spec(&t, &a, &h);
            assert_eq!(back, case, "seed {seed} round-trips through its spec");
        }
    }

    #[test]
    fn shorthands_expand() {
        let case = GenCase::from_spec(
            &["C1 sc C0", "p0 dom C0", "i0 a C1", "i0 p0 \"v0\""],
            &["?v0 a C0", "?v0 p0 ?v1"],
            &["?v0"],
        );
        assert_eq!(case.triples.len(), 4);
        assert_eq!(case.triples[0].p, Term::uri(vocab::RDFS_SUBCLASS_OF));
        assert_eq!(case.triples[2].p, Term::uri(vocab::RDF_TYPE));
        assert_eq!(case.triples[3].o, Term::literal("v0"));
        assert_eq!(case.query.head, vec![0]);
    }
}
