//! # jucq-qa — differential correctness harness
//!
//! Seeded strategy-equivalence fuzzing for the `jucq` engine. The
//! paper's central claims are equivalences — saturation ≡ UCQ ≡ SCQ ≡
//! any cover-based JUCQ (Theorem 3.1) — which makes them directly
//! testable: generate a random RDFS schema, instance data, and a BGP
//! query from a seed ([`gen`]), answer it every way the engine knows at
//! several parallelism levels on every engine profile ([`oracle`]), and
//! demand bit-identical answer multisets. On a mismatch, shrink the
//! case to a 1-minimal reproducer ([`shrink`]) and print it as a
//! ready-to-paste regression test ([`report`]).
//!
//! Entry points: [`run_fuzz`] (the `jucq fuzz` subcommand and CI), and
//! [`check_case`] (regression tests over [`GenCase::from_spec`]).

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod report;
pub mod shrink;
mod spec;

pub use gen::{gen_case, AtomSpec, GenCase, QTerm, QuerySpec};
pub use oracle::{check_case, check_case_with, profiles_for, CaseStats};
pub use report::reproducer_test;
pub use shrink::shrink;

use jucq_store::EngineProfile;

/// One fuzzing failure: the seed, the oracle's complaint, and the
/// shrunk reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The per-case seed (base seed + case index).
    pub seed: u64,
    /// The oracle's mismatch description for the original case.
    pub message: String,
    /// The 1-minimal shrunk case.
    pub shrunk: GenCase,
    /// A ready-to-paste `#[test]` reproducing the failure.
    pub reproducer: String,
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Total strategy × parallelism × profile answers compared.
    pub answers_checked: u64,
    /// Total valid covers enumerated and executed as fixed covers.
    pub covers_enumerated: u64,
    /// Failures found (the run stops after three).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True iff every case passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `cases` differential cases starting at `seed` (case `i` uses
/// seed `seed + i`) against `profiles`. Failures are shrunk and
/// reported; the run aborts after three distinct failures. With
/// `verbose`, progress is printed every 50 cases.
pub fn run_fuzz(seed: u64, cases: usize, profiles: &[EngineProfile], verbose: bool) -> FuzzReport {
    let mut report =
        FuzzReport { cases: 0, answers_checked: 0, covers_enumerated: 0, failures: Vec::new() };
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i as u64);
        let case = gen_case(case_seed);
        report.cases += 1;
        match check_case_with(&case, profiles) {
            Ok(stats) => {
                report.answers_checked += stats.answers_checked as u64;
                report.covers_enumerated += stats.covers_enumerated as u64;
            }
            Err(message) => {
                eprintln!("jucq-qa: seed {case_seed} FAILED: {message}");
                eprintln!("jucq-qa: shrinking…");
                let shrunk = shrink(&case, profiles);
                let reproducer = reproducer_test(&shrunk, case_seed, &message);
                eprintln!("{reproducer}");
                report.failures.push(FuzzFailure { seed: case_seed, message, shrunk, reproducer });
                if report.failures.len() >= 3 {
                    eprintln!("jucq-qa: three failures collected, stopping early");
                    break;
                }
            }
        }
        if verbose && (i + 1) % 50 == 0 {
            eprintln!(
                "jucq-qa: {}/{cases} cases, {} answers compared, {} failures",
                i + 1,
                report.answers_checked,
                report.failures.len()
            );
        }
    }
    report
}
