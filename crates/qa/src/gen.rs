//! Seeded random generation of RDFS schemas, instance data, and BGP
//! queries.
//!
//! Everything is driven by a single `u64` seed through the workspace's
//! deterministic `rand` shim, so a failing case is reproduced exactly
//! by its seed — across machines and across runs.
//!
//! The generated universe is deliberately tiny (a dozen classes, five
//! properties, a dozen individuals, four literals): small vocabularies
//! force heavy constant reuse, which maximizes join collisions,
//! reformulation fan-out, and cover-choice diversity per case. Ghost
//! constants (absent from both schema and data) appear with low
//! probability to exercise the empty-reformulation paths.
//!
//! Every case's class hierarchy contains a deterministic backbone —
//! a subclass chain of depth ≥ 4, a fan-out of ≥ 4 siblings under one
//! root, and a multi-parent diamond — with random extra edges layered
//! on top. The backbone guarantees each case exercises the shapes the
//! hierarchy-aware encoding cares about (deep intervals, wide sibling
//! blocks, residual unions at diamond joins) instead of leaving them
//! to the luck of the random DAG.

use jucq_model::{vocab, Term, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A term position of a query atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QTerm {
    /// A query variable (`?vN`).
    Var(u16),
    /// A constant RDF term.
    Term(Term),
}

/// One triple pattern of a generated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpec {
    /// Subject position.
    pub s: QTerm,
    /// Predicate position.
    pub p: QTerm,
    /// Object position.
    pub o: QTerm,
}

/// A generated BGP query, independent of any dictionary encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Distinguished (answer) variables; always a subset of the body
    /// variables.
    pub head: Vec<u16>,
    /// The body triple patterns.
    pub atoms: Vec<AtomSpec>,
}

impl QuerySpec {
    /// All distinct variables of the body, in first-occurrence order.
    pub fn variables(&self) -> Vec<u16> {
        let mut out = Vec::new();
        let mut push = |t: &QTerm| {
            if let QTerm::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        };
        for a in &self.atoms {
            push(&a.s);
            push(&a.p);
            push(&a.o);
        }
        out
    }
}

/// One generated differential-test case: a graph plus a query over it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenCase {
    /// Schema and instance triples.
    pub triples: Vec<Triple>,
    /// The query, as constants and variable ids (encoded per database
    /// by the oracle).
    pub query: QuerySpec,
}

const N_CLASSES: usize = 12;
const N_PROPS: usize = 5;
const N_INDIVIDUALS: usize = 12;
const N_LITERALS: usize = 4;

fn class(i: usize) -> Term {
    Term::uri(format!("C{i}"))
}

fn prop(i: usize) -> Term {
    Term::uri(format!("p{i}"))
}

fn individual(i: usize) -> Term {
    Term::uri(format!("i{i}"))
}

fn literal(i: usize) -> Term {
    Term::literal(format!("v{i}"))
}

/// A class constant; 5% of draws are a ghost class absent from the
/// schema and the data.
fn any_class(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.05) {
        Term::uri("GhostClass")
    } else {
        class(rng.gen_range(0..N_CLASSES))
    }
}

fn any_prop(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.05) {
        Term::uri("ghostProp")
    } else {
        prop(rng.gen_range(0..N_PROPS))
    }
}

fn any_individual(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.05) {
        Term::uri("ghostInd")
    } else {
        individual(rng.gen_range(0..N_INDIVIDUALS))
    }
}

/// Generate the case for `seed` — the same seed always yields the same
/// case.
pub fn gen_case(seed: u64) -> GenCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let triples = gen_triples(&mut rng);
    let query = gen_query(&mut rng);
    GenCase { triples, query }
}

/// Random RDFS schema (subClassOf / subPropertyOf DAGs plus domain and
/// range assignments) and instance triples.
fn gen_triples(rng: &mut StdRng) -> Vec<Triple> {
    let t = |s: Term, p: &str, o: Term| Triple::new(s, Term::uri(p), o);
    let mut out = Vec::new();

    // Class hierarchy backbone, present in every case:
    //   chain   C4 ⊑ C3 ⊑ C2 ⊑ C1 ⊑ C0           (depth ≥ 4)
    //   fan-out C5, C6, C7, C8 ⊑ C0               (≥ 4 siblings)
    //   diamond C9 ⊑ C5 and C9 ⊑ C6 (both ⊑ C0)   (multi-parent)
    for i in 1..=4 {
        out.push(t(class(i), vocab::RDFS_SUBCLASS_OF, class(i - 1)));
    }
    for i in 5..=8 {
        out.push(t(class(i), vocab::RDFS_SUBCLASS_OF, class(0)));
    }
    out.push(t(class(9), vocab::RDFS_SUBCLASS_OF, class(5)));
    out.push(t(class(9), vocab::RDFS_SUBCLASS_OF, class(6)));
    // Random extra DAG edges on top: edges only point to lower indexes,
    // so the graph stays acyclic by construction; additional multiple
    // parents are allowed (more diamonds, deeper residual unions).
    for i in 1..N_CLASSES {
        if rng.gen_bool(0.3) {
            out.push(t(class(i), vocab::RDFS_SUBCLASS_OF, class(rng.gen_range(0..i))));
        }
        if i >= 2 && rng.gen_bool(0.2) {
            out.push(t(class(i), vocab::RDFS_SUBCLASS_OF, class(rng.gen_range(0..i))));
        }
    }
    // Property DAG, same shape.
    for i in 1..N_PROPS {
        if rng.gen_bool(0.5) {
            out.push(t(prop(i), vocab::RDFS_SUBPROPERTY_OF, prop(rng.gen_range(0..i))));
        }
    }
    // Domain / range constraints.
    for i in 0..N_PROPS {
        if rng.gen_bool(0.5) {
            out.push(t(prop(i), vocab::RDFS_DOMAIN, class(rng.gen_range(0..N_CLASSES))));
        }
        if rng.gen_bool(0.4) {
            out.push(t(prop(i), vocab::RDFS_RANGE, class(rng.gen_range(0..N_CLASSES))));
        }
    }

    // Instance triples.
    let n = rng.gen_range(0..=28usize);
    for _ in 0..n {
        if rng.gen_bool(0.35) {
            out.push(t(
                individual(rng.gen_range(0..N_INDIVIDUALS)),
                vocab::RDF_TYPE,
                class(rng.gen_range(0..N_CLASSES)),
            ));
        } else {
            let o = if rng.gen_bool(0.35) {
                literal(rng.gen_range(0..N_LITERALS))
            } else {
                individual(rng.gen_range(0..N_INDIVIDUALS))
            };
            out.push(Triple::new(
                individual(rng.gen_range(0..N_INDIVIDUALS)),
                prop(rng.gen_range(0..N_PROPS)),
                o,
            ));
        }
    }
    out
}

/// Random BGP query: 0–4 atoms; mostly connected (each atom after the
/// first reuses an earlier variable), occasionally disconnected on
/// purpose (the oracle then demands a consistent `CoverError` from
/// every cover strategy), rarely zero-atom.
fn gen_query(rng: &mut StdRng) -> QuerySpec {
    let roll = rng.gen_range(0..100u32);
    let n_atoms = match roll {
        0..=2 => 0,
        3..=29 => 1,
        30..=59 => 2,
        60..=84 => 3,
        _ => 4,
    };
    if n_atoms == 0 {
        return QuerySpec { head: Vec::new(), atoms: Vec::new() };
    }
    let disconnected = n_atoms >= 2 && rng.gen_bool(0.08);

    let mut next_var: u16 = 0;
    let mut vars: Vec<u16> = Vec::new();
    let fresh = |vars: &mut Vec<u16>, next_var: &mut u16| -> u16 {
        let v = *next_var;
        *next_var += 1;
        vars.push(v);
        v
    };

    let mut atoms = Vec::with_capacity(n_atoms);
    for k in 0..n_atoms {
        // The join variable tying this atom to the earlier ones. The
        // first atom, and every atom of a deliberately disconnected
        // query, starts its own component.
        let link: Option<u16> = if k == 0 || disconnected || vars.is_empty() {
            None
        } else {
            Some(vars[rng.gen_range(0..vars.len())])
        };

        if rng.gen_bool(0.35) {
            // Class atom: ?s rdf:type C.
            let s = link.unwrap_or_else(|| fresh(&mut vars, &mut next_var));
            atoms.push(AtomSpec {
                s: QTerm::Var(s),
                p: QTerm::Term(Term::uri(vocab::RDF_TYPE)),
                o: QTerm::Term(any_class(rng)),
            });
        } else {
            // Property atom: s p o with the link on a random end. The
            // object's shape is decided first so that a link aimed at a
            // constant object slot falls back to the subject instead of
            // stranding a fresh variable.
            let link_on_subject = rng.gen_bool(0.7);
            let o_roll = rng.gen_range(0..10u32);
            let o_is_var = o_roll <= 4;
            let s = if link_on_subject || !o_is_var {
                link.unwrap_or_else(|| fresh(&mut vars, &mut next_var))
            } else {
                fresh(&mut vars, &mut next_var)
            };
            let p = if rng.gen_bool(0.05) {
                QTerm::Var(fresh(&mut vars, &mut next_var))
            } else {
                QTerm::Term(any_prop(rng))
            };
            let o = if o_is_var {
                let v = if !link_on_subject {
                    link.unwrap_or_else(|| fresh(&mut vars, &mut next_var))
                } else {
                    fresh(&mut vars, &mut next_var)
                };
                QTerm::Var(v)
            } else if o_roll <= 7 {
                QTerm::Term(any_individual(rng))
            } else {
                QTerm::Term(literal(rng.gen_range(0..N_LITERALS)))
            };
            atoms.push(AtomSpec { s: QTerm::Var(s), p, o });
        }
    }

    let spec = QuerySpec { head: Vec::new(), atoms };
    let body_vars = spec.variables();
    // Non-empty random subset of the body variables as the head.
    let mut head: Vec<u16> = body_vars.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
    if head.is_empty() {
        head.push(body_vars[rng.gen_range(0..body_vars.len())]);
    }
    QuerySpec { head, atoms: spec.atoms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_case() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(gen_case(seed), gen_case(seed));
        }
    }

    #[test]
    fn head_is_subset_of_body_vars() {
        for seed in 0..500u64 {
            let case = gen_case(seed);
            let vars = case.query.variables();
            for h in &case.query.head {
                assert!(vars.contains(h), "seed {seed}: head var ?v{h} not in body");
            }
            if !case.query.atoms.is_empty() {
                assert!(!case.query.head.is_empty(), "seed {seed}: empty head");
            }
        }
    }

    #[test]
    fn every_case_has_the_hierarchy_backbone() {
        for seed in [0u64, 7, 42, 9999] {
            let case = gen_case(seed);
            let sub = |child: usize, parent: usize| {
                case.triples.iter().any(|t| {
                    t.s == class(child)
                        && t.p == Term::uri(vocab::RDFS_SUBCLASS_OF)
                        && t.o == class(parent)
                })
            };
            // Depth-4 chain, 4-wide fan-out, and the C9 diamond.
            for i in 1..=4 {
                assert!(sub(i, i - 1), "seed {seed}: chain edge C{i} ⊑ C{}", i - 1);
            }
            for i in 5..=8 {
                assert!(sub(i, 0), "seed {seed}: fan-out edge C{i} ⊑ C0");
            }
            assert!(sub(9, 5) && sub(9, 6), "seed {seed}: diamond C9 ⊑ C5, C6");
        }
    }

    #[test]
    fn generates_every_shape() {
        let (mut zero, mut one, mut four) = (false, false, false);
        for seed in 0..500u64 {
            match gen_case(seed).query.atoms.len() {
                0 => zero = true,
                1 => one = true,
                4 => four = true,
                _ => {}
            }
        }
        assert!(zero && one && four, "generator covers 0/1/4-atom queries");
    }
}
