//! Greedy counterexample shrinking.
//!
//! A freshly generated failing case carries dozens of irrelevant
//! triples and atoms. The shrinker repeatedly tries removing one
//! element — triples first, then query atoms — keeping a removal
//! whenever the shrunk case *still fails* the oracle, and loops until a
//! full pass removes nothing. The result is 1-minimal: dropping any
//! single remaining element makes the failure disappear.
//!
//! Removing an atom can orphan head variables, so the head is re-cut to
//! the surviving body variables after each atom removal (dropping the
//! head entirely only for queries that lost all their atoms).

use jucq_store::EngineProfile;

use crate::gen::GenCase;
use crate::oracle::check_case_with;

/// Re-cut the head to the variables still present in the body.
fn fix_head(case: &mut GenCase) {
    let vars = case.query.variables();
    case.query.head.retain(|v| vars.contains(v));
}

fn still_fails(case: &GenCase, profiles: &[EngineProfile]) -> bool {
    check_case_with(case, profiles).is_err()
}

/// Shrink a failing case to a 1-minimal reproducer. `case` must fail
/// `check_case_with` under `profiles`; the returned case still does.
pub fn shrink(case: &GenCase, profiles: &[EngineProfile]) -> GenCase {
    debug_assert!(still_fails(case, profiles), "shrink() called on a passing case");
    let mut cur = case.clone();
    loop {
        let mut progressed = false;

        let mut i = 0;
        while i < cur.triples.len() {
            let mut cand = cur.clone();
            cand.triples.remove(i);
            if still_fails(&cand, profiles) {
                cur = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        let mut i = 0;
        while i < cur.query.atoms.len() {
            let mut cand = cur.clone();
            cand.query.atoms.remove(i);
            fix_head(&mut cand);
            if still_fails(&cand, profiles) {
                cur = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{AtomSpec, QTerm, QuerySpec};
    use jucq_model::Term;

    #[test]
    fn fix_head_drops_orphaned_vars() {
        let mut case = GenCase {
            triples: Vec::new(),
            query: QuerySpec {
                head: vec![0, 1],
                atoms: vec![AtomSpec {
                    s: QTerm::Var(0),
                    p: QTerm::Term(Term::uri("p0")),
                    o: QTerm::Term(Term::uri("i0")),
                }],
            },
        };
        fix_head(&mut case);
        assert_eq!(case.query.head, vec![0]);
    }
}
