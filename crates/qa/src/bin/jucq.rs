//! `jucq` — a command-line front end for the library.
//!
//! ```text
//! jucq query <data.ttl> "<SPARQL>" [--strategy S] [--profile P] [--compare]
//!            [--threads N] [--batch-size N] [--explain-analyze] [--trace]
//!            [--metrics-json PATH] [--query-log PATH] [--slow-ms N]
//!            [--trace-out PATH]
//! jucq explain <data.ttl> "<SPARQL>" [--analyze] [--strategy S] [--profile P]
//!              [--threads N] [--batch-size N]  # physical plan (est vs actual with --analyze)
//! jucq covers <data.ttl> "<SPARQL>"           # every cover, sized & timed
//! jucq stats <data.ttl>                       # dataset & schema statistics
//! jucq repl  <data.ttl>                       # interactive session
//! jucq replay <data.ttl> <log.jsonl> [--report PATH]    # regression replay
//! jucq advise <log.jsonl> [--budget-tuples N]           # view advisor
//! jucq fuzz  [--seed S] [--cases N] [--profile P|all]   # differential fuzzing
//! jucq serve <data.ttl> [--port N] [--threads N] [--deadline-ms N]
//!            [--queue-depth N] [--strategy S] [--profile P] [--encoding E]
//!            [--plan-cache N] [--query-log PATH] [--slow-ms N]
//!            [--view-budget-tuples N] [--auto-views LOG]  # HTTP endpoint
//! ```
//!
//! Strategies: `sat`, `ucq`, `scq`, `range`, `ecov`, `gcov` (default).
//! Profiles: `pg` (default), `db2`, `mysql`, `native`.
//! Encoding: `--encoding plain|hierarchical` selects the dictionary
//! id-assignment mode; `hierarchical` remaps ids so class/property
//! subtrees occupy contiguous blocks, letting the planner collapse
//! reformulation unions into interval scans (pair it with
//! `--strategy range`).
//! Threads: `--threads N` (or the `JUCQ_THREADS` environment variable)
//! sizes the worker pool for union/fragment evaluation and cover
//! scoring; the default is the machine's available parallelism.
//! Batching: `--batch-size N` (or the `JUCQ_BATCH` environment
//! variable) sets the vectorized executor's rows-per-batch target; `0`
//! disables vectorization and runs the row-at-a-time kernels.
//!
//! Observability: `--explain-analyze` renders per-node estimated vs.
//! actual rows with Q-errors instead of the result rows; `--trace`
//! prints the pipeline span tree to stderr; `--metrics-json PATH`
//! writes the collected spans and metrics as JSON; `--trace-out PATH`
//! writes them as a Chrome-trace-event (catapult) file loadable in
//! Perfetto; `--query-log PATH` appends one structured JSONL record per
//! answered query (`JUCQ_QUERY_LOG` is the env equivalent) and
//! `--slow-ms N` additionally embeds the rendered `EXPLAIN ANALYZE`
//! tree for queries at or above the threshold (`JUCQ_SLOW_MS`).
//! `jucq replay` re-executes a recorded log and reports row-count
//! mismatches, latency percentile deltas, and Q-error drift, exiting
//! non-zero on any mismatch.
//!
//! Materialized views: `jucq advise <log.jsonl>` aggregates a recorded
//! workload and prints the cover fragments worth materializing under a
//! tuple budget (best measured benefit per stored tuple first). `jucq
//! serve --view-budget-tuples N` enables the view catalog, and
//! `--auto-views <log.jsonl>` runs the advisor at startup and pins the
//! advised queries before the first request; pins are re-materialized
//! automatically after every data update.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::time::Duration;

use jucq_core::reformulation::Cover;
use jucq_core::store::EngineProfile;
use jucq_core::{AnswerError, EncodingMode, RdfDatabase, Strategy};

fn usage() -> ! {
    eprintln!(
        "usage:\n  jucq query    <data.ttl|.snap> \"<SPARQL>\" [--strategy sat|ucq|scq|range|ecov|gcov] [--profile pg|db2|mysql|native] [--encoding plain|hierarchical] [--threads N] [--batch-size N] [--compare] [--explain-analyze] [--trace] [--metrics-json PATH] [--query-log PATH] [--slow-ms N] [--trace-out PATH]\n  jucq explain  <data.ttl|.snap> \"<SPARQL>\" [--analyze] [--strategy ...] [--profile ...] [--encoding ...] [--threads N] [--batch-size N]\n  jucq covers   <data.ttl|.snap> \"<SPARQL>\"\n  jucq stats    <data.ttl|.snap>\n  jucq repl     <data.ttl|.snap> [--profile ...] [--encoding ...] [--threads N] [--batch-size N]\n  jucq replay   <data.ttl|.snap> <log.jsonl> [--profile ...] [--encoding ...] [--threads N] [--batch-size N] [--report PATH]\n  jucq snapshot <data.ttl> <out.snap>\n  jucq advise   <log.jsonl> [--budget-tuples N]\n  jucq fuzz     [--seed S] [--cases N] [--profile pg|db2|mysql|native|all] [--quiet]\n  jucq serve    <data.ttl|.snap> [--port N] [--threads N] [--deadline-ms N] [--queue-depth N] [--strategy ...] [--profile ...] [--encoding ...] [--plan-cache N] [--query-log PATH] [--slow-ms N] [--view-budget-tuples N] [--auto-views LOG]"
    );
    std::process::exit(2)
}

fn parse_strategy(name: &str) -> Option<Strategy> {
    match name {
        "sat" | "saturation" => Some(Strategy::Saturation),
        "ucq" => Some(Strategy::Ucq),
        "scq" => Some(Strategy::Scq),
        "range" => Some(Strategy::Range),
        "ecov" => Some(Strategy::ecov_default()),
        "gcov" => Some(Strategy::gcov_default()),
        _ => None,
    }
}

fn parse_encoding(name: &str) -> Option<EncodingMode> {
    match name {
        "plain" => Some(EncodingMode::Plain),
        "hier" | "hierarchical" => Some(EncodingMode::Hierarchical),
        _ => None,
    }
}

fn parse_profile(name: &str) -> Option<EngineProfile> {
    match name {
        "pg" => Some(EngineProfile::pg_like()),
        "db2" => Some(EngineProfile::db2_like()),
        "mysql" => Some(EngineProfile::mysql_like()),
        "native" => Some(EngineProfile::native_like()),
        _ => None,
    }
}

fn load(
    path: &str,
    profile: EngineProfile,
    encoding: EncodingMode,
) -> Result<RdfDatabase, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    // Snapshot files self-identify by magic; anything else is Turtle.
    let mut db = if bytes.starts_with(b"JUCQSNAP") {
        let graph = jucq_core::snapshot::load(&bytes)?;
        RdfDatabase::from_graph(graph, profile)
    } else {
        let text = String::from_utf8(bytes)?;
        let mut db = RdfDatabase::with_profile(profile);
        db.load_turtle(&text)?;
        db
    };
    db.set_encoding(encoding);
    eprintln!(
        "loaded {} data triples, {} schema constraints",
        db.graph().len(),
        db.graph().schema().len()
    );
    Ok(db)
}

fn cmd_snapshot(args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let [input, output] = args.as_slice() else { usage() };
    let db = load(input, EngineProfile::pg_like(), EncodingMode::Plain)?;
    let bytes = jucq_core::snapshot::save(db.graph());
    std::fs::write(output, &bytes)?;
    eprintln!("wrote {} ({} bytes)", output, bytes.len());
    Ok(())
}

fn run_query(db: &mut RdfDatabase, sparql: &str, strategy: &Strategy, max_rows: usize) {
    let q = match db.parse_query(sparql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return;
        }
    };
    match db.answer(&q, strategy) {
        Ok(report) => {
            let rows = db.decode_rows(&report.rows);
            for row in rows.iter().take(max_rows) {
                let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
                println!("{}", cells.join("\t"));
            }
            if rows.len() > max_rows {
                println!("... ({} more rows)", rows.len() - max_rows);
            }
            eprintln!(
                "-- {}: {} rows, {} union terms, plan {:?} + eval {:?}{}",
                report.strategy,
                rows.len(),
                report.union_terms,
                report.planning_time,
                report.eval_time,
                report.cover.map(|c| format!(", cover {c}")).unwrap_or_default(),
            );
        }
        Err(AnswerError::Engine(e)) => eprintln!("engine failure: {e}"),
        Err(e) => eprintln!("{e}"),
    }
    if let Some(stats) = db.plan_cache_stats() {
        eprintln!(
            "-- plan cache: {} hit(s), {} miss(es), {} eviction(s)",
            stats.hits, stats.misses, stats.evictions
        );
    }
}

fn run_explain_analyze(db: &mut RdfDatabase, sparql: &str, strategy: &Strategy) {
    let q = match db.parse_query(sparql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return;
        }
    };
    match db.explain_analyze(&q, strategy) {
        Ok(text) => print!("{text}"),
        Err(e) => eprintln!("explain analyze failed: {e}"),
    }
}

fn cmd_query(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    if args.len() < 2 {
        usage();
    }
    let mut strategy = Strategy::gcov_default();
    let mut profile = EngineProfile::pg_like();
    let mut encoding = EncodingMode::Plain;
    let mut threads: Option<usize> = None;
    let mut batch_size: Option<usize> = None;
    let mut compare = false;
    let mut explain_analyze = false;
    let mut trace = false;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut query_log: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut positional: Vec<String> = Vec::new();
    while !args.is_empty() {
        let a = args.remove(0);
        match a.as_str() {
            "--strategy" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                strategy = parse_strategy(&v).unwrap_or_else(|| usage());
            }
            "--profile" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                profile = parse_profile(&v).unwrap_or_else(|| usage());
            }
            "--encoding" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                encoding = parse_encoding(&v).unwrap_or_else(|| usage());
            }
            "--threads" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                threads = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--batch-size" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                batch_size = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--compare" => compare = true,
            "--explain-analyze" => explain_analyze = true,
            "--trace" => trace = true,
            "--metrics-json" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                if v.is_empty() {
                    usage();
                }
                metrics_json = Some(v);
            }
            "--trace-out" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                if v.is_empty() {
                    usage();
                }
                trace_out = Some(v);
            }
            "--query-log" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                if v.is_empty() {
                    usage();
                }
                query_log = Some(v);
            }
            "--slow-ms" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                slow_ms = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => positional.push(a),
        }
    }
    let [path, sparql] = positional.as_slice() else {
        usage();
    };
    if let Some(n) = threads {
        profile = profile.with_parallelism(n);
    }
    if let Some(n) = batch_size {
        profile = profile.with_batch_size(n);
    }
    let observing = trace || metrics_json.is_some() || trace_out.is_some();
    if observing {
        jucq_obs::set_enabled(true);
    }
    // CLI flags win over the environment; either installs the sink.
    let log_path = query_log
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("JUCQ_QUERY_LOG").map(PathBuf::from));
    let slow_threshold =
        slow_ms.map(Duration::from_millis).or_else(jucq_obs::record::slow_ms_from_env);
    if log_path.is_some() || slow_threshold.is_some() {
        jucq_obs::record::install(jucq_obs::QueryLogConfig {
            path: log_path,
            ring_capacity: 0,
            slow_threshold,
        })?;
    }
    let mut db = load(path, profile, encoding)?;
    db.enable_plan_cache(64);
    if explain_analyze {
        run_explain_analyze(&mut db, sparql, &strategy);
    } else if compare {
        for s in [
            Strategy::Saturation,
            Strategy::Ucq,
            Strategy::Scq,
            Strategy::Range,
            Strategy::gcov_default(),
        ] {
            run_query(&mut db, sparql, &s, 0);
        }
    } else {
        run_query(&mut db, sparql, &strategy, 1000);
    }
    if observing {
        jucq_obs::set_enabled(false);
        let session = jucq_obs::take_session();
        if trace {
            eprint!("{}", jucq_obs::export::to_text(&session));
        }
        if let Some(path) = &metrics_json {
            std::fs::write(path, jucq_obs::export::to_json(&session))?;
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, jucq_obs::to_chrome_trace(&session))?;
            eprintln!("wrote catapult trace to {path} (load in Perfetto or about://tracing)");
        }
    }
    jucq_obs::record::uninstall();
    Ok(())
}

fn cmd_replay(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = EngineProfile::pg_like();
    let mut encoding = EncodingMode::Plain;
    let mut threads: Option<usize> = None;
    let mut batch_size: Option<usize> = None;
    let mut report_path: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    while !args.is_empty() {
        let a = args.remove(0);
        match a.as_str() {
            "--profile" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                profile = parse_profile(&v).unwrap_or_else(|| usage());
            }
            "--encoding" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                encoding = parse_encoding(&v).unwrap_or_else(|| usage());
            }
            "--threads" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                threads = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--batch-size" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                batch_size = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--report" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                if v.is_empty() {
                    usage();
                }
                report_path = Some(v);
            }
            _ => positional.push(a),
        }
    }
    let [path, log] = positional.as_slice() else {
        usage();
    };
    if let Some(n) = threads {
        profile = profile.with_parallelism(n);
    }
    if let Some(n) = batch_size {
        profile = profile.with_batch_size(n);
    }
    let text = std::fs::read_to_string(log)?;
    let (records, errors) = jucq_obs::record::parse_log(&text);
    for e in &errors {
        eprintln!("query-log: skipping {e}");
    }
    if records.is_empty() {
        return Err(format!("no replayable records in {log}").into());
    }
    let mut db = load(path, profile, encoding)?;
    db.enable_plan_cache(64);
    let report = jucq_core::telemetry::replay(&mut db, &records);
    eprintln!(
        "replayed {} record(s): {} row mismatch(es), {} outcome mismatch(es), {} replay error(s)",
        report.total, report.row_mismatches, report.outcome_mismatches, report.replay_errors,
    );
    let (rec, rep) = (&report.recorded_latency, &report.replayed_latency);
    eprintln!(
        "latency p50/p95/p99: recorded {:.3}/{:.3}/{:.3} ms, replayed {:.3}/{:.3}/{:.3} ms",
        rec.p50 as f64 / 1e6,
        rec.p95 as f64 / 1e6,
        rec.p99 as f64 / 1e6,
        rep.p50 as f64 / 1e6,
        rep.p95 as f64 / 1e6,
        rep.p99 as f64 / 1e6,
    );
    if let (Some(max), Some(mean)) = (report.max_q_error_drift, report.mean_q_error_drift) {
        eprintln!("Q-error drift: max {max:.2}, mean {mean:.2}");
    }
    match &report_path {
        Some(p) => {
            std::fs::write(p, report.to_json())?;
            eprintln!("wrote replay report to {p}");
        }
        None => println!("{}", report.to_json()),
    }
    if report.mismatches() > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_advise(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let mut budget_tuples: usize = 1_000_000;
    let mut positional: Vec<String> = Vec::new();
    while !args.is_empty() {
        let a = args.remove(0);
        match a.as_str() {
            "--budget-tuples" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                budget_tuples = v.parse().unwrap_or_else(|_| usage());
            }
            _ => positional.push(a),
        }
    }
    let [log] = positional.as_slice() else {
        usage();
    };
    let text = std::fs::read_to_string(log)?;
    let (records, errors) = jucq_obs::record::parse_log(&text);
    for e in &errors {
        eprintln!("query-log: skipping {e}");
    }
    if records.is_empty() {
        return Err(format!("no records in {log}").into());
    }
    let report = jucq_core::advisor::advise(&records, budget_tuples);
    print!("{}", jucq_core::advisor::render(&report));
    Ok(())
}

/// Map a query-log strategy short name back to a pinnable [`Strategy`].
/// `Cover` records carry the cover itself and are rebuilt per query in
/// [`auto_pin_views`]; `SAT` never reaches here (the advisor filters it).
fn strategy_from_record_name(name: &str) -> Option<Strategy> {
    match name {
        "UCQ" => Some(Strategy::Ucq),
        "SCQ" => Some(Strategy::Scq),
        "Range" => Some(Strategy::Range),
        "UCQmin" => Some(Strategy::minimized_ucq_default()),
        "ECov" => Some(Strategy::ecov_default()),
        "GCov" => Some(Strategy::gcov_default()),
        _ => None,
    }
}

/// Run the advisor over `log` and pin each advised query's fragments
/// into `serving`'s view catalog (one pin per distinct (query,
/// strategy); the catalog's tuple budget is the hard cap, so a pin that
/// would overflow it is simply refused at insert time).
fn auto_pin_views(
    serving: &jucq_core::ServingDb,
    log: &str,
    budget_tuples: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(log)?;
    let (records, errors) = jucq_obs::record::parse_log(&text);
    for e in &errors {
        eprintln!("query-log: skipping {e}");
    }
    let report = jucq_core::advisor::advise(&records, budget_tuples);
    eprint!("{}", jucq_core::advisor::render(&report));
    let mut seen: Vec<(String, String)> = Vec::new();
    let mut pinned = 0usize;
    for a in &report.advice {
        let key = (a.query.clone(), a.strategy.clone());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let strategy = match a.strategy.as_str() {
            "Cover" => {
                let Some(cover) = &a.cover else { continue };
                let Ok(q) = serving.snapshot().parse_query(&a.query) else { continue };
                let fragments: Vec<Vec<usize>> =
                    cover.iter().map(|f| f.iter().map(|&i| i as usize).collect()).collect();
                match Cover::new(&q, fragments) {
                    Ok(c) => Strategy::FixedCover(c),
                    Err(_) => continue,
                }
            }
            name => match strategy_from_record_name(name) {
                Some(s) => s,
                None => continue,
            },
        };
        match serving.pin_views(&a.query, &strategy) {
            Ok(n) => pinned += n,
            Err(e) => eprintln!("auto-views: skipping `{}`: {e}", a.query),
        }
    }
    if let Some(stats) = serving.view_stats() {
        eprintln!(
            "auto-views: {pinned} fragment(s) pinned, catalog {} entr(ies) / {} of {} tuples",
            stats.entries, stats.total_tuples, stats.budget_tuples
        );
    }
    Ok(())
}

fn cmd_explain(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let mut strategy = Strategy::gcov_default();
    let mut profile = EngineProfile::pg_like();
    let mut encoding = EncodingMode::Plain;
    let mut threads: Option<usize> = None;
    let mut batch_size: Option<usize> = None;
    let mut analyze = false;
    let mut positional: Vec<String> = Vec::new();
    while !args.is_empty() {
        let a = args.remove(0);
        match a.as_str() {
            "--strategy" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                strategy = parse_strategy(&v).unwrap_or_else(|| usage());
            }
            "--profile" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                profile = parse_profile(&v).unwrap_or_else(|| usage());
            }
            "--encoding" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                encoding = parse_encoding(&v).unwrap_or_else(|| usage());
            }
            "--threads" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                threads = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--batch-size" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                batch_size = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--analyze" => analyze = true,
            _ => positional.push(a),
        }
    }
    let [path, sparql] = positional.as_slice() else {
        usage();
    };
    if let Some(n) = threads {
        profile = profile.with_parallelism(n);
    }
    if let Some(n) = batch_size {
        profile = profile.with_batch_size(n);
    }
    let mut db = load(path, profile, encoding)?;
    let q = db.parse_query(sparql)?;
    let text =
        if analyze { db.explain_analyze(&q, &strategy)? } else { db.explain(&q, &strategy)? };
    print!("{text}");
    Ok(())
}

fn cmd_covers(args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let [path, sparql] = args.as_slice() else {
        usage();
    };
    let mut db = load(path, EngineProfile::pg_like(), EncodingMode::Plain)?;
    let q = db.parse_query(sparql)?;
    // Enumerate two-fragment covers plus the extremes, report sizes and
    // measured times (the Table 2 experience for any query).
    let mut covers: Vec<(String, Cover)> = Vec::new();
    if let Ok(c) = Cover::single_fragment(&q) {
        covers.push(("UCQ (single fragment)".into(), c));
    }
    if let Ok(c) = Cover::singletons(&q) {
        covers.push(("SCQ (singletons)".into(), c));
    }
    let n = q.len();
    for i in 0..n {
        let rest: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        if rest.is_empty() {
            continue;
        }
        if let Ok(c) = Cover::new(&q, vec![vec![i], rest.clone()]) {
            covers.push((format!("{{t{}}} | rest", i + 1), c));
        }
    }
    for (label, cover) in covers {
        match db.answer(&q, &Strategy::FixedCover(cover)) {
            Ok(r) => println!(
                "{label:<24} {:>8} terms  {:>10.1} ms  {:>8} rows",
                r.union_terms,
                r.eval_time.as_secs_f64() * 1e3,
                r.rows.len()
            ),
            Err(e) => println!("{label:<24} failed: {e}"),
        }
    }
    let best = db.answer(&q, &Strategy::gcov_default())?;
    println!(
        "GCov chooses {} ({} terms, {:.1} ms)",
        best.cover.expect("cover-based"),
        best.union_terms,
        best.eval_time.as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_stats(args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let [path] = args.as_slice() else { usage() };
    let mut db = load(path, EngineProfile::pg_like(), EncodingMode::Plain)?;
    db.prepare();
    let plain = db.plain_store();
    println!("data triples (plain store): {}", plain.stats().total());
    println!("distinct predicates:        {}", plain.stats().distinct_predicates());
    let sat = db.saturated_store();
    println!("saturated triples:          {}", sat.stats().total());
    let closure = db.closure();
    println!("classes:                    {}", closure.classes().len());
    println!("properties:                 {}", closure.properties().len());
    let c = db.cost_constants();
    println!("calibrated constants:       c_db={:.2e} c_t={:.2e} c_j={:.2e} c_m={:.2e} c_l={:.2e} c_k={:.2e} c_range={:.2e}",
        c.c_db, c.c_t, c.c_j, c.c_m, c.c_l, c.c_k, c.c_range);
    Ok(())
}

fn cmd_repl(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let mut profile = EngineProfile::pg_like();
    let mut encoding = EncodingMode::Plain;
    let mut threads: Option<usize> = None;
    let mut batch_size: Option<usize> = None;
    let mut positional = Vec::new();
    while !args.is_empty() {
        let a = args.remove(0);
        if a == "--profile" {
            let v = args.first().cloned().unwrap_or_default();
            args.drain(..1.min(args.len()));
            profile = parse_profile(&v).unwrap_or_else(|| usage());
        } else if a == "--encoding" {
            let v = args.first().cloned().unwrap_or_default();
            args.drain(..1.min(args.len()));
            encoding = parse_encoding(&v).unwrap_or_else(|| usage());
        } else if a == "--threads" {
            let v = args.first().cloned().unwrap_or_default();
            args.drain(..1.min(args.len()));
            threads = Some(v.parse().unwrap_or_else(|_| usage()));
        } else if a == "--batch-size" {
            let v = args.first().cloned().unwrap_or_default();
            args.drain(..1.min(args.len()));
            batch_size = Some(v.parse().unwrap_or_else(|_| usage()));
        } else {
            positional.push(a);
        }
    }
    let [path] = positional.as_slice() else { usage() };
    if let Some(n) = threads {
        profile = profile.with_parallelism(n);
    }
    if let Some(n) = batch_size {
        profile = profile.with_batch_size(n);
    }
    let mut db = load(path, profile, encoding)?;
    db.enable_plan_cache(64);
    if jucq_obs::record::install_from_env() {
        eprintln!("query log installed from JUCQ_QUERY_LOG/JUCQ_SLOW_MS");
    }
    let mut strategy = Strategy::gcov_default();
    eprintln!("jucq repl — enter a SPARQL query, or :strategy/:profile/:help/:quit");
    let stdin = std::io::stdin();
    loop {
        eprint!("jucq> ");
        std::io::stderr().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut parts = cmd.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("quit" | "q"), _) => break,
                (Some("strategy"), Some(v)) => match parse_strategy(v) {
                    Some(s) => strategy = s,
                    None => eprintln!("unknown strategy `{v}`"),
                },
                (Some("profile"), Some(v)) => match parse_profile(v) {
                    Some(p) => db.set_profile(p),
                    None => eprintln!("unknown profile `{v}`"),
                },
                (Some("help"), _) => eprintln!(
                    ":strategy sat|ucq|scq|range|ecov|gcov, :profile pg|db2|mysql|native, :quit"
                ),
                _ => eprintln!("unknown command; try :help"),
            }
            continue;
        }
        run_query(&mut db, line, &strategy, 50);
    }
    Ok(())
}

fn cmd_serve(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let mut port: u16 = 8677;
    let mut threads: Option<usize> = None;
    let mut queue_depth: usize = 64;
    let mut deadline_ms: Option<u64> = None;
    let mut strategy = Strategy::gcov_default();
    let mut profile = EngineProfile::pg_like();
    let mut encoding = EncodingMode::Plain;
    let mut plan_cache: usize = 256;
    let mut query_log: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut view_budget_tuples: Option<usize> = None;
    let mut auto_views: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    while !args.is_empty() {
        let a = args.remove(0);
        let mut flag_value = || {
            let v = args.first().cloned().unwrap_or_default();
            args.drain(..1.min(args.len()));
            if v.is_empty() {
                usage();
            }
            v
        };
        match a.as_str() {
            "--port" => port = flag_value().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = Some(flag_value().parse().unwrap_or_else(|_| usage())),
            "--queue-depth" => queue_depth = flag_value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                deadline_ms = Some(flag_value().parse().unwrap_or_else(|_| usage()));
            }
            "--strategy" => strategy = parse_strategy(&flag_value()).unwrap_or_else(|| usage()),
            "--profile" => profile = parse_profile(&flag_value()).unwrap_or_else(|| usage()),
            "--encoding" => encoding = parse_encoding(&flag_value()).unwrap_or_else(|| usage()),
            "--plan-cache" => plan_cache = flag_value().parse().unwrap_or_else(|_| usage()),
            "--query-log" => query_log = Some(flag_value()),
            "--slow-ms" => slow_ms = Some(flag_value().parse().unwrap_or_else(|_| usage())),
            "--view-budget-tuples" => {
                view_budget_tuples = Some(flag_value().parse().unwrap_or_else(|_| usage()));
            }
            "--auto-views" => auto_views = Some(flag_value()),
            _ => positional.push(a),
        }
    }
    let [path] = positional.as_slice() else {
        usage();
    };

    jucq_obs::set_enabled(true);
    let log_path = query_log
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("JUCQ_QUERY_LOG").map(PathBuf::from));
    let slow_threshold =
        slow_ms.map(Duration::from_millis).or_else(jucq_obs::record::slow_ms_from_env);
    if log_path.is_some() || slow_threshold.is_some() {
        jucq_obs::record::install(jucq_obs::QueryLogConfig {
            path: log_path,
            ring_capacity: 0,
            slow_threshold,
        })?;
    }

    let mut db = load(path, profile, encoding)?;
    if plan_cache > 0 {
        db.enable_plan_cache(plan_cache);
    }
    // --auto-views implies a catalog; default its budget if unset.
    let budget = match (view_budget_tuples, &auto_views) {
        (Some(n), _) => Some(n),
        (None, Some(_)) => Some(1_000_000),
        (None, None) => None,
    };
    if let Some(n) = budget {
        db.enable_views(n);
        eprintln!("view catalog enabled: budget {n} tuples");
    }
    let serving = std::sync::Arc::new(jucq_core::ServingDb::new(db));
    if let (Some(log), Some(n)) = (&auto_views, budget) {
        auto_pin_views(&serving, log, n)?;
    }
    eprintln!("prepared and published epoch {}", serving.epoch());

    let mut config = jucq_server::ServeConfig {
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
        queue_depth: queue_depth.max(1),
        deadline: deadline_ms.map(Duration::from_millis),
        strategy,
        ..jucq_server::ServeConfig::default()
    };
    if let Some(n) = threads {
        config.threads = n.max(1);
    }
    let server = jucq_server::Server::start(serving, config)?;
    // The listening line goes to stdout so scripts can scrape the port
    // (`--port 0` lets the OS pick one).
    println!("listening on http://{}", server.local_addr());
    println!("endpoints: POST /query  GET /metrics  GET /health");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    loop {
        std::thread::park();
    }
}

fn cmd_fuzz(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let mut seed: u64 = 1;
    let mut cases: usize = 500;
    let mut profile = String::from("all");
    let mut verbose = true;
    while !args.is_empty() {
        let a = args.remove(0);
        match a.as_str() {
            "--seed" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--cases" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                cases = v.parse().unwrap_or_else(|_| usage());
            }
            "--profile" => {
                let v = args.first().cloned().unwrap_or_default();
                args.drain(..1.min(args.len()));
                profile = v;
            }
            "--quiet" => verbose = false,
            _ => usage(),
        }
    }
    let profiles = jucq_qa::profiles_for(&profile).unwrap_or_else(|| usage());
    eprintln!("jucq-qa: fuzzing {cases} cases from seed {seed} against profile(s) `{profile}`");
    let report = jucq_qa::run_fuzz(seed, cases, &profiles, verbose);
    eprintln!(
        "jucq-qa: {} cases, {} answers compared, {} covers enumerated, {} failure(s)",
        report.cases,
        report.answers_checked,
        report.covers_enumerated,
        report.failures.len()
    );
    if !report.ok() {
        for f in &report.failures {
            eprintln!("jucq-qa: failing seed {} — rerun with `jucq fuzz --seed {} --cases 1 --profile {profile}`", f.seed, f.seed);
        }
        std::process::exit(1);
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "query" => cmd_query(args),
        "explain" => cmd_explain(args),
        "covers" => cmd_covers(args),
        "stats" => cmd_stats(args),
        "repl" => cmd_repl(args),
        "replay" => cmd_replay(args),
        "advise" => cmd_advise(args),
        "snapshot" => cmd_snapshot(args),
        "serve" => cmd_serve(args),
        "fuzz" => cmd_fuzz(args),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
