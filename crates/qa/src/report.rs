//! Ready-to-paste reproducers for failing cases.
//!
//! A shrunk counterexample is rendered as a complete `#[test]` function
//! over the textual spec format, so fixing a fuzz find is: paste the
//! emitted test into `tests/fuzz_regressions.rs`, watch it fail, fix
//! the engine, watch it pass — and it stays checked in.

use crate::gen::GenCase;

fn string_list(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "&[]".to_string();
    }
    let mut out = String::from("&[\n");
    for it in items {
        out.push_str(indent);
        out.push_str("    ");
        out.push_str(&format!("{it:?}"));
        out.push_str(",\n");
    }
    out.push_str(indent);
    out.push(']');
    out
}

/// Render a `#[test]` reproducing this (ideally shrunk) case. The
/// failure message goes in as a comment so the regression file
/// documents what each seed once broke.
pub fn reproducer_test(case: &GenCase, seed: u64, message: &str) -> String {
    let (triples, atoms, head) = case.to_spec();
    let mut comment = String::new();
    for line in message.lines() {
        comment.push_str(&format!("    // {line}\n"));
    }
    format!(
        "#[test]\nfn fuzz_seed_{seed}() {{\n{comment}    let case = jucq_qa::GenCase::from_spec(\n        {},\n        {},\n        {},\n    );\n    jucq_qa::check_case(&case).unwrap();\n}}\n",
        string_list(&triples, "        "),
        string_list(&atoms, "        "),
        string_list(&head, "        "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducer_contains_spec_and_seed() {
        let case = GenCase::from_spec(&["i0 p0 i1"], &["?v0 p0 ?v1"], &["?v0"]);
        let t = reproducer_test(&case, 7, "UCQ mismatched SAT");
        assert!(t.contains("fn fuzz_seed_7()"));
        assert!(t.contains("\"i0 p0 i1\""));
        assert!(t.contains("\"?v0 p0 ?v1\""));
        assert!(t.contains("// UCQ mismatched SAT"));
        assert!(t.contains("check_case(&case).unwrap()"));
    }
}
