//! The differential oracle.
//!
//! Theorem 3.1 says every valid cover of a CQ yields a JUCQ
//! reformulation with the same answers; §2 says reformulation over the
//! plain graph equals plain evaluation over the saturation. The oracle
//! makes both executable: saturation is ground truth, and UCQ, SCQ,
//! minimized UCQ, ECov, GCov, and explicitly enumerated fixed covers
//! must all reproduce it bit-for-bit — at parallelism 1, 2 and 8, on
//! every engine profile under test.
//!
//! Degenerate shapes are checked for *consistency* rather than skipped:
//! a disconnected (cartesian) body has no valid cover, so every
//! cover-based strategy must report a [`CoverError`] (never panic,
//! never return wrong rows); a zero-atom query has no answers under any
//! strategy.
//!
//! The cost model is held to its contract on the side: every enumerated
//! cover's estimate must be non-NaN and non-negative (infinity marks
//! infeasibility), and GCov may never return a cover it estimates worse
//! than the all-singletons cover it started from.

use std::time::Duration;

use jucq_core::{AnswerError, CostSource, RdfDatabase, Strategy};
use jucq_optimizer::{gcov, CoverSearch, PaperCostModel};
use jucq_reformulation::reformulate::ReformulationEnv;
use jucq_reformulation::{BgpQuery, Cover};
use jucq_store::{EngineProfile, JoinAlgo, PatternTerm, StorePattern};

use crate::gen::{GenCase, QTerm, QuerySpec};

/// Raise a profile's resource limits so only genuine engine behaviour
/// differences remain (join algorithms, materialization policy), never
/// budget-dependent refusals — the generated cases are tiny.
fn permissive(p: EngineProfile) -> EngineProfile {
    p.with_max_union_terms(2_000_000)
        .with_memory_budget(100_000_000)
        .with_timeout(Duration::from_secs(30))
}

/// The engine profiles a fuzz run exercises, by CLI name.
pub fn profiles_for(choice: &str) -> Option<Vec<EngineProfile>> {
    match choice {
        "all" => Some(EngineProfile::rdbms_trio().to_vec()),
        "pg" => Some(vec![EngineProfile::pg_like()]),
        "db2" => Some(vec![EngineProfile::db2_like()]),
        "mysql" => Some(vec![EngineProfile::mysql_like()]),
        "native" => Some(vec![EngineProfile::native_like()]),
        _ => None,
    }
}

/// What one passing case actually exercised, for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Strategy × parallelism × profile answer runs compared.
    pub answers_checked: usize,
    /// Valid covers enumerated and run as `FixedCover`.
    pub covers_enumerated: usize,
}

/// Parallelism levels every strategy is swept over.
const PAR_LEVELS: [usize; 3] = [1, 2, 8];

/// The view-catalog tuple budget for the differential views leg, from
/// the `JUCQ_VIEWS` environment variable (the CI fuzz matrix sets it).
/// Absent, unparsable or `0` → the leg is skipped.
fn views_budget() -> Option<usize> {
    std::env::var("JUCQ_VIEWS").ok()?.trim().parse::<usize>().ok().filter(|b| *b > 0)
}

fn pattern_term(db: &mut RdfDatabase, t: &QTerm) -> PatternTerm {
    match t {
        QTerm::Var(v) => PatternTerm::Var(*v),
        QTerm::Term(t) => PatternTerm::Const(db.intern_term(t)),
    }
}

/// Encode the query spec against this database's dictionary. Constants
/// absent from the data are interned fresh (they then match nothing —
/// exactly the absent-vocabulary situation being tested).
fn build_query(db: &mut RdfDatabase, spec: &QuerySpec) -> BgpQuery {
    let atoms = spec
        .atoms
        .iter()
        .map(|a| {
            StorePattern::new(
                pattern_term(db, &a.s),
                pattern_term(db, &a.p),
                pattern_term(db, &a.o),
            )
        })
        .collect();
    BgpQuery::new(spec.head.clone(), atoms)
}

/// Decode and sort an answer relation into a canonical, dictionary-
/// independent form: databases built per profile need not agree on
/// term ids, only on terms.
fn canon_rows(db: &RdfDatabase, rows: &jucq_store::Relation) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> =
        db.decode_rows(rows).iter().map(|r| r.iter().map(|t| t.to_string()).collect()).collect();
    out.sort();
    out
}

/// All valid covers of `q`, by brute force over fragment families for
/// small queries (≤ 3 atoms: at most 2⁷ families) and a deterministic
/// sample of splits for 4-atom queries.
fn enumerate_covers(q: &BgpQuery) -> Vec<Cover> {
    let n = q.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    if n <= 3 {
        let subsets: Vec<Vec<usize>> = (1u32..(1 << n))
            .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
            .collect();
        let m = subsets.len();
        for family_mask in 1u32..(1 << m) {
            let family: Vec<Vec<usize>> = (0..m)
                .filter(|j| family_mask & (1 << j) != 0)
                .map(|j| subsets[j].clone())
                .collect();
            if let Ok(c) = Cover::new(q, family) {
                out.push(c);
            }
        }
    } else {
        // 4 atoms: the trivial covers plus every two-way split.
        let mut candidates: Vec<Vec<Vec<usize>>> =
            vec![vec![(0..n).collect()], (0..n).map(|i| vec![i]).collect()];
        for mask in 1u32..(1 << (n - 1)) {
            let left: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let right: Vec<usize> = (0..n).filter(|i| mask & (1 << i) == 0).collect();
            candidates.push(vec![left, right]);
        }
        for family in candidates {
            if let Ok(c) = Cover::new(q, family) {
                out.push(c);
            }
        }
    }
    out
}

fn named_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Ucq,
        Strategy::Scq,
        Strategy::Range,
        Strategy::minimized_ucq_default(),
        Strategy::ECov { budget: Duration::from_secs(10), cost: CostSource::Paper },
        Strategy::GCov {
            budget: Duration::from_secs(10),
            max_moves: 10_000,
            cost: CostSource::Paper,
        },
    ]
}

/// Run the full differential matrix for one case over the default
/// engine-profile trio. `Err` carries a human-readable mismatch
/// description.
pub fn check_case(case: &GenCase) -> Result<CaseStats, String> {
    check_case_with(case, &EngineProfile::rdbms_trio())
}

/// [`check_case`] against an explicit profile list (the first profile's
/// saturation answer at parallelism 1 is ground truth).
pub fn check_case_with(case: &GenCase, profiles: &[EngineProfile]) -> Result<CaseStats, String> {
    let mut stats = CaseStats::default();
    let mut truth: Option<Vec<Vec<String>>> = None;

    for (pi, profile) in profiles.iter().enumerate() {
        let base = permissive(profile.clone());
        let mut db = RdfDatabase::with_profile(base.clone().with_parallelism(1));
        db.extend(&case.triples);
        let q = build_query(&mut db, &case.query);

        // Ground truth: saturation, sequential.
        let sat = db
            .answer(&q, &Strategy::Saturation)
            .map_err(|e| format!("[{}] SAT failed: {e}", profile.name))?;
        let sat_rows = canon_rows(&db, &sat.rows);
        stats.answers_checked += 1;
        match &truth {
            None => truth = Some(sat_rows.clone()),
            Some(t) => {
                if *t != sat_rows {
                    return Err(format!(
                        "[{}] SAT disagrees across profiles: {} vs {} rows",
                        profile.name,
                        t.len(),
                        sat_rows.len()
                    ));
                }
            }
        }
        let truth_rows = truth.as_ref().expect("set above");

        // A body whose singleton fragments cannot form a cover is
        // disconnected (or empty-query, handled uniformly upstream):
        // cover strategies must consistently say so.
        let coverable = q.is_empty() || Cover::singletons(&q).is_ok();

        let covers = if coverable { enumerate_covers(&q) } else { Vec::new() };
        stats.covers_enumerated += covers.len();

        for par in PAR_LEVELS {
            db.set_profile(base.clone().with_parallelism(par));

            // SAT itself must be parallelism-invariant.
            let sat_p = db
                .answer(&q, &Strategy::Saturation)
                .map_err(|e| format!("[{} par={par}] SAT failed: {e}", profile.name))?;
            stats.answers_checked += 1;
            if canon_rows(&db, &sat_p.rows) != *truth_rows {
                return Err(format!(
                    "[{} par={par}] SAT differs from sequential SAT",
                    profile.name
                ));
            }

            let run = |strategy: &Strategy,
                       label: &str,
                       db: &mut RdfDatabase,
                       stats: &mut CaseStats|
             -> Result<(), String> {
                let got = db.answer(&q, strategy);
                stats.answers_checked += 1;
                if coverable {
                    let rep = got.map_err(|e| {
                        format!(
                            "[{} par={par}] {label} failed on a coverable query: {e}",
                            profile.name
                        )
                    })?;
                    let rows = canon_rows(db, &rep.rows);
                    if rows != *truth_rows {
                        return Err(format!(
                            "[{} par={par}] {label} answered {} rows, SAT answered {}:\n  {label}: {rows:?}\n  SAT: {truth_rows:?}",
                            profile.name,
                            rows.len(),
                            truth_rows.len()
                        ));
                    }
                } else {
                    match got {
                        Err(AnswerError::Cover(_)) => {}
                        Err(e) => {
                            return Err(format!(
                                "[{} par={par}] {label} on a disconnected query: expected a cover error, got {e}",
                                profile.name
                            ))
                        }
                        Ok(_) => {
                            return Err(format!(
                                "[{} par={par}] {label} on a disconnected query: expected a cover error, got an answer",
                                profile.name
                            ))
                        }
                    }
                }
                Ok(())
            };

            for strategy in named_strategies() {
                run(&strategy, strategy.name(), &mut db, &mut stats)?;
            }

            // Theorem 3.1, literally: every enumerated valid cover
            // answers identically. Swept at the sequential and widest
            // parallelism levels.
            if par == 1 || par == 8 {
                for (ci, cover) in covers.iter().enumerate() {
                    run(
                        &Strategy::FixedCover(cover.clone()),
                        &format!("Cover#{ci}"),
                        &mut db,
                        &mut stats,
                    )?;
                }
            }
        }

        // The hierarchy-aware encoding must be answer-invisible: the
        // same case loaded into a hierarchically-encoded database (ids
        // remapped so class/property subtrees are contiguous, range
        // collapse actually firing) answers identically under SAT,
        // plain UCQ, and the Range strategy — sequential and at the
        // widest parallelism. The generator's backbone guarantees every
        // case has a deep chain, a wide fan-out, and a multi-parent
        // diamond for this leg to chew on.
        let mut db_h = RdfDatabase::with_profile(base.clone().with_parallelism(1))
            .with_encoding(jucq_core::EncodingMode::Hierarchical);
        db_h.extend(&case.triples);
        let q_h = build_query(&mut db_h, &case.query);
        for par in [1, 8] {
            db_h.set_profile(base.clone().with_parallelism(par));
            for strategy in [Strategy::Saturation, Strategy::Ucq, Strategy::Range] {
                let label = format!("hier/{}", strategy.name());
                let got = db_h.answer(&q_h, &strategy);
                stats.answers_checked += 1;
                if coverable || strategy == Strategy::Saturation {
                    let rep = got
                        .map_err(|e| format!("[{} par={par}] {label} failed: {e}", profile.name))?;
                    let rows = canon_rows(&db_h, &rep.rows);
                    if rows != *truth_rows {
                        return Err(format!(
                            "[{} par={par}] {label} answered {} rows, plain SAT answered {}:\n  {label}: {rows:?}\n  SAT: {truth_rows:?}",
                            profile.name,
                            rows.len(),
                            truth_rows.len()
                        ));
                    }
                } else if !matches!(got, Err(AnswerError::Cover(_))) {
                    return Err(format!(
                        "[{} par={par}] {label} on a disconnected query: expected a cover error",
                        profile.name
                    ));
                }
            }
        }

        // Materialized fragment views must be answer-invisible. With
        // `JUCQ_VIEWS=<budget>` in the environment (the CI fuzz matrix
        // dimension), load the case into a views-enabled database, pin
        // the query's cover fragments under each view-consulting
        // strategy, and demand the view-served answers still equal
        // ground truth. Once per case on the first profile.
        if pi == 0 {
            if let Some(budget) = views_budget() {
                let mut db_v = RdfDatabase::with_profile(
                    base.clone().with_parallelism(1).with_view_scans(true),
                );
                db_v.extend(&case.triples);
                db_v.enable_views(budget);
                let q_v = build_query(&mut db_v, &case.query);
                for strategy in [Strategy::Ucq, Strategy::gcov_default()] {
                    let label = format!("views/{}", strategy.name());
                    if coverable && !q_v.is_empty() {
                        db_v.pin_cover_fragments(&q_v, &strategy, None)
                            .map_err(|e| format!("[{}] {label} pin failed: {e}", profile.name))?;
                    }
                    let got = db_v.answer(&q_v, &strategy);
                    stats.answers_checked += 1;
                    if coverable {
                        let rep =
                            got.map_err(|e| format!("[{}] {label} failed: {e}", profile.name))?;
                        let rows = canon_rows(&db_v, &rep.rows);
                        if rows != *truth_rows {
                            return Err(format!(
                                "[{}] {label} answered {} rows, SAT answered {}:\n  {label}: {rows:?}\n  SAT: {truth_rows:?}",
                                profile.name,
                                rows.len(),
                                truth_rows.len()
                            ));
                        }
                    } else if !matches!(got, Err(AnswerError::Cover(_))) {
                        return Err(format!(
                            "[{}] {label} on a disconnected query: expected a cover error",
                            profile.name
                        ));
                    }
                }
            }
        }

        // Order-aware execution must be answer-invisible. Force the
        // sort-merge fragment join (so every join is a merge the
        // order machinery can touch) and demand identical answers with
        // the knob on — sort elision, galloping, scan borrowing — and
        // off (the row-at-a-time, always-sorting baseline), sequential
        // and at the widest parallelism. Once per case on the first
        // profile.
        if pi == 0 {
            let merge =
                permissive(EngineProfile::pg_like()).with_fragment_join(JoinAlgo::SortMerge);
            for order in [true, false] {
                let mut db_o = RdfDatabase::with_profile(
                    merge.clone().with_parallelism(1).with_order_aware(order),
                );
                db_o.extend(&case.triples);
                let q_o = build_query(&mut db_o, &case.query);
                for par in [1, 8] {
                    db_o.set_profile(merge.clone().with_parallelism(par).with_order_aware(order));
                    for strategy in [Strategy::Ucq, Strategy::gcov_default()] {
                        let label = format!(
                            "order{}/{}",
                            if order { "+elide" } else { "-off" },
                            strategy.name()
                        );
                        let got = db_o.answer(&q_o, &strategy);
                        stats.answers_checked += 1;
                        if coverable {
                            let rep = got.map_err(|e| {
                                format!("[{} par={par}] {label} failed: {e}", profile.name)
                            })?;
                            let rows = canon_rows(&db_o, &rep.rows);
                            if rows != *truth_rows {
                                return Err(format!(
                                    "[{} par={par}] {label} answered {} rows, SAT answered {}:\n  {label}: {rows:?}\n  SAT: {truth_rows:?}",
                                    profile.name,
                                    rows.len(),
                                    truth_rows.len()
                                ));
                            }
                        } else if !matches!(got, Err(AnswerError::Cover(_))) {
                            return Err(format!(
                                "[{} par={par}] {label} on a disconnected query: expected a cover error",
                                profile.name
                            ));
                        }
                    }
                }
            }
        }

        // Cost-model sanity, once per case on the first profile.
        if pi == 0 && coverable && !q.is_empty() {
            check_costs(&mut db, &q, &covers).map_err(|e| format!("[{}] {e}", profile.name))?;
        }
    }
    Ok(stats)
}

/// Assert the cost model's basic contract over every enumerated cover,
/// and that GCov's pick is estimated no worse than its all-singletons
/// starting point.
fn check_costs(db: &mut RdfDatabase, q: &BgpQuery, covers: &[Cover]) -> Result<(), String> {
    let constants = db.cost_constants();
    let closure = db.closure().clone();
    let rdf_type = db.rdf_type();
    let store = db.plain_store();
    let model = PaperCostModel::new(store.table(), store.stats(), constants);
    let env = ReformulationEnv { closure: &closure, rdf_type };
    let search = CoverSearch::new(q, env, &model);

    for (ci, cover) in covers.iter().enumerate() {
        let cost = search.cover_cost(cover);
        if cost.is_nan() {
            return Err(format!("cover #{ci} estimated NaN"));
        }
        if cost < 0.0 {
            return Err(format!("cover #{ci} estimated negative cost {cost}"));
        }
    }

    let singletons = Cover::singletons(q).map_err(|e| format!("singletons: {e:?}"))?;
    let baseline = search.cover_cost(&singletons);
    let picked =
        gcov(&search, Duration::from_secs(10), 10_000).map_err(|e| format!("gcov: {e:?}"))?;
    if picked.estimated_cost > baseline + 1e-9 {
        return Err(format!(
            "GCov chose a cover it estimates at {} — worse than the all-singletons baseline {}",
            picked.estimated_cost, baseline
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn enumerates_covers_of_a_two_atom_chain() {
        let case = GenCase::from_spec(
            &["i0 p0 i1", "i1 p1 i2"],
            &["?v0 p0 ?v1", "?v1 p1 ?v2"],
            &["?v0", "?v2"],
        );
        let mut db = RdfDatabase::new();
        db.extend(&case.triples);
        let q = build_query(&mut db, &case.query);
        let covers = enumerate_covers(&q);
        // Inclusion-free families only: {{0,1}} and {{0},{1}}.
        assert_eq!(covers.len(), 2);
    }

    #[test]
    fn oracle_accepts_a_handful_of_generated_cases() {
        for seed in 0..5u64 {
            let case = gen_case(seed);
            check_case_with(&case, &[EngineProfile::pg_like()])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
