//! Property test: counting-based incremental saturation maintenance is
//! exactly equivalent to re-saturating from scratch, under arbitrary
//! interleavings of insertions and deletions.

use proptest::prelude::*;

use jucq_model::{vocab, Graph, Term, Triple, TripleId};
use jucq_reformulation::incremental::IncrementalSaturation;
use jucq_reformulation::saturation::saturate_with;

/// A random small schema over classes C0..C4 and properties p0..p3.
#[derive(Debug, Clone)]
struct SchemaDesc {
    subclass: Vec<(usize, usize)>,
    subprop: Vec<(usize, usize)>,
    domain: Vec<(usize, usize)>,
    range: Vec<(usize, usize)>,
}

fn schema_desc() -> impl Strategy<Value = SchemaDesc> {
    (
        proptest::collection::vec((0usize..5, 0usize..5), 0..5),
        proptest::collection::vec((0usize..4, 0usize..4), 0..4),
        proptest::collection::vec((0usize..4, 0usize..5), 0..4),
        proptest::collection::vec((0usize..4, 0usize..5), 0..4),
    )
        .prop_map(|(subclass, subprop, domain, range)| SchemaDesc {
            subclass,
            subprop,
            domain,
            range,
        })
}

/// An update script: (is_insert, subject, prop-or-type, object/class).
type Op = (bool, usize, usize, usize);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((any::<bool>(), 0usize..6, 0usize..5, 0usize..6), 1..40)
}

fn build_graph(desc: &SchemaDesc) -> Graph {
    let mut g = Graph::new();
    let t = |s: String, p: String, o: String| Triple::new(Term::uri(s), Term::uri(p), Term::uri(o));
    for &(a, b) in &desc.subclass {
        g.insert(&t(format!("C{a}"), vocab::RDFS_SUBCLASS_OF.into(), format!("C{b}")));
    }
    for &(a, b) in &desc.subprop {
        g.insert(&t(format!("p{a}"), vocab::RDFS_SUBPROPERTY_OF.into(), format!("p{b}")));
    }
    for &(p, c) in &desc.domain {
        g.insert(&t(format!("p{p}"), vocab::RDFS_DOMAIN.into(), format!("C{c}")));
    }
    for &(p, c) in &desc.range {
        g.insert(&t(format!("p{p}"), vocab::RDFS_RANGE.into(), format!("C{c}")));
    }
    // Pre-intern the data vocabulary so ops map to stable ids.
    for i in 0..6 {
        g.dict_mut().encode_uri(&format!("e{i}"));
    }
    for i in 0..4 {
        g.dict_mut().encode_uri(&format!("p{i}"));
    }
    for i in 0..5 {
        g.dict_mut().encode_uri(&format!("C{i}"));
    }
    g
}

fn op_triple(g: &mut Graph, op: &Op) -> TripleId {
    let (_, s, p, o) = *op;
    let rdf_type = g.rdf_type();
    let d = g.dict_mut();
    let subject = d.encode_uri(&format!("e{s}"));
    // Property index 4 means an rdf:type assertion on class o%5.
    if p == 4 {
        let class = d.encode_uri(&format!("C{}", o % 5));
        TripleId::new(subject, rdf_type, class)
    } else {
        let object = d.encode_uri(&format!("e{o}"));
        TripleId::new(subject, d.encode_uri(&format!("p{p}")), object)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn incremental_equals_full_resaturation(desc in schema_desc(), script in ops()) {
        let mut g = build_graph(&desc);
        let closure = g.schema_closure();
        let rdf_type = g.rdf_type();
        let mut incremental = IncrementalSaturation::new(&[], closure.clone(), rdf_type);
        let mut explicit: Vec<TripleId> = Vec::new();

        for op in &script {
            let t = op_triple(&mut g, op);
            if op.0 {
                incremental.insert(t);
                if !explicit.contains(&t) {
                    explicit.push(t);
                }
            } else {
                incremental.delete(&t);
                explicit.retain(|x| *x != t);
            }
            // Invariant after every step: incremental == full.
            let full = saturate_with(&explicit, &closure, rdf_type);
            prop_assert_eq!(incremental.triples(), full);
        }
    }

    #[test]
    fn deltas_partition_the_saturation_change(desc in schema_desc(), script in ops()) {
        let mut g = build_graph(&desc);
        let closure = g.schema_closure();
        let rdf_type = g.rdf_type();
        let mut incremental = IncrementalSaturation::new(&[], closure, rdf_type);

        for op in &script {
            let before: Vec<TripleId> = incremental.triples();
            let t = op_triple(&mut g, op);
            let delta = if op.0 { incremental.insert(t) } else { incremental.delete(&t) };
            let after: Vec<TripleId> = incremental.triples();
            // added = after \ before, removed = before \ after.
            let mut added: Vec<TripleId> =
                after.iter().filter(|x| before.binary_search(x).is_err()).copied().collect();
            let mut removed: Vec<TripleId> =
                before.iter().filter(|x| after.binary_search(x).is_err()).copied().collect();
            added.sort_unstable();
            removed.sort_unstable();
            let mut da = delta.added.clone();
            let mut dr = delta.removed.clone();
            da.sort_unstable();
            dr.sort_unstable();
            prop_assert_eq!(da, added);
            prop_assert_eq!(dr, removed);
        }
    }
}
