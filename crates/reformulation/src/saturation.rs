//! Graph saturation (forward chaining).
//!
//! Computes the paper's `G∞`: the fixed point of the DB-fragment RDFS
//! entailment rules (rdfs2/3/7/9 over data, plus the constraint-level
//! rules precomputed by [`jucq_model::SchemaClosure`]). Because the
//! schema is closed first, a **single pass** over the data suffices:
//!
//! * `s p o` with `p ⊑ₚ⁺ p′`        ⟹ `s p′ o`           (rdfs7)
//! * `s p o` with `C ∈ dom⁺(p)`     ⟹ `s rdf:type C`      (rdfs2)
//! * `s p o` with `C ∈ rng⁺(p)`     ⟹ `o rdf:type C`      (rdfs3)
//! * `s rdf:type C` with `C ⊑꜀⁺ C′` ⟹ `s rdf:type C′`     (rdfs9)
//!
//! Every consequence of a derived triple is already produced directly
//! from the originating explicit triple, because the closed relations
//! are transitive and upward-closed.
//!
//! **Generalized triples.** When a range constraint applies to a
//! literal-valued property, rdfs3 types the literal (`"1996" rdf:type
//! C`). Standard RDF forbids literal subjects in *asserted* triples, but
//! we keep these generalized consequences so that saturation-based and
//! reformulation-based answering agree exactly (the reformulated atom
//! `(z, p, x)` likewise binds `x` to literals). DESIGN.md documents the
//! convention; the benchmark ontologies never declare class ranges on
//! literal-valued properties, so the case never arises there.

use jucq_model::{vocab, FxHashSet, Graph, SchemaClosure, TermId, TripleId};

/// Saturate the data triples of `graph` (the graph is mutated only to
/// intern `rdf:type` if absent). The result contains the explicit data
/// triples plus all entailed ones, sorted for determinism. Schema
/// triples are *not* included — see [`schema_triples`].
pub fn saturate(graph: &mut Graph) -> Vec<TripleId> {
    let closure = graph.schema_closure();
    let rdf_type = graph.rdf_type();
    saturate_with(graph.data(), &closure, rdf_type)
}

/// Saturation core, reusable when the closure is already at hand.
pub fn saturate_with(
    data: &[TripleId],
    closure: &SchemaClosure,
    rdf_type: TermId,
) -> Vec<TripleId> {
    jucq_obs::span!("saturation");
    let mut out: FxHashSet<TripleId> = data.iter().copied().collect();
    for t in data {
        if t.p == rdf_type {
            if t.o.is_uri() {
                for &sup in closure.super_classes(t.o) {
                    out.insert(TripleId::new(t.s, rdf_type, sup));
                }
            }
        } else {
            for &sup in closure.super_properties(t.p) {
                out.insert(TripleId::new(t.s, sup, t.o));
            }
            for &c in closure.domains(t.p) {
                out.insert(TripleId::new(t.s, rdf_type, c));
            }
            for &c in closure.ranges(t.p) {
                out.insert(TripleId::new(t.o, rdf_type, c));
            }
        }
    }
    let mut v: Vec<TripleId> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// Materialize the *closed* schema as triples (all entailed
/// `rdfs:subClassOf` / `rdfs:subPropertyOf` / `rdfs:domain` /
/// `rdfs:range` statements). Both the reformulation store and the
/// saturation store load these, so schema-level query atoms answer
/// identically under either technique.
pub fn schema_triples(graph: &mut Graph, closure: &SchemaClosure) -> Vec<TripleId> {
    let subclass = graph.dict_mut().encode_uri(vocab::RDFS_SUBCLASS_OF);
    let subprop = graph.dict_mut().encode_uri(vocab::RDFS_SUBPROPERTY_OF);
    let domain = graph.dict_mut().encode_uri(vocab::RDFS_DOMAIN);
    let range = graph.dict_mut().encode_uri(vocab::RDFS_RANGE);
    let mut out: Vec<TripleId> = Vec::new();
    for &c in closure.classes() {
        for &sup in closure.super_classes(c) {
            out.push(TripleId::new(c, subclass, sup));
        }
    }
    for &p in closure.properties() {
        for &sup in closure.super_properties(p) {
            out.push(TripleId::new(p, subprop, sup));
        }
        for &c in closure.domains(p) {
            out.push(TripleId::new(p, domain, c));
        }
        for &c in closure.ranges(p) {
            out.push(TripleId::new(p, range, c));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::{Term, Triple};

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::uri(s), Term::uri(p), o)
    }

    /// The paper's Figure 3 graph.
    fn paper_graph() -> Graph {
        let mut g = Graph::new();
        g.extend(&[
            t("doi1", vocab::RDF_TYPE, Term::uri("Book")),
            t("doi1", "writtenBy", Term::blank("b1")),
            t("doi1", "hasTitle", Term::literal("Game of Thrones")),
            Triple::new(
                Term::blank("b1"),
                Term::uri("hasName"),
                Term::literal("George R. R. Martin"),
            ),
            t("doi1", "publishedIn", Term::literal("1996")),
            t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
            t("writtenBy", vocab::RDFS_DOMAIN, Term::uri("Book")),
            t("writtenBy", vocab::RDFS_RANGE, Term::uri("Person")),
        ]);
        g
    }

    fn contains(g: &Graph, sat: &[TripleId], s: &str, p: &str, o: Term) -> bool {
        let d = g.dict();
        let (Some(s), Some(p), Some(o)) =
            (d.lookup(&Term::uri(s)), d.lookup(&Term::uri(p)), d.lookup(&o))
        else {
            return false;
        };
        sat.binary_search(&TripleId::new(s, p, o)).is_ok()
    }

    #[test]
    fn figure3_dashed_edges_are_derived() {
        let mut g = paper_graph();
        let sat = saturate(&mut g);
        // doi1 hasAuthor _:b1 (subproperty).
        assert!(contains(&g, &sat, "doi1", "hasAuthor", Term::blank("b1")));
        // doi1 rdf:type Publication (subclass of its type + domain).
        assert!(contains(&g, &sat, "doi1", vocab::RDF_TYPE, Term::uri("Publication")));
        // _:b1 rdf:type Person (range).
        let d = g.dict();
        let b1 = d.lookup(&Term::blank("b1")).unwrap();
        let ty = d.lookup(&Term::uri(vocab::RDF_TYPE)).unwrap();
        let person = d.lookup(&Term::uri("Person")).unwrap();
        assert!(sat.binary_search(&TripleId::new(b1, ty, person)).is_ok());
    }

    #[test]
    fn explicit_triples_are_kept() {
        let mut g = paper_graph();
        let n_data = g.len();
        let sat = saturate(&mut g);
        assert!(sat.len() > n_data);
        for t in g.data() {
            assert!(sat.binary_search(t).is_ok());
        }
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut g = paper_graph();
        let sat1 = saturate(&mut g);
        let closure = g.schema_closure();
        let rdf_type = g.rdf_type();
        let sat2 = saturate_with(&sat1, &closure, rdf_type);
        assert_eq!(sat1, sat2);
    }

    #[test]
    fn empty_schema_means_no_new_triples() {
        let mut g = Graph::new();
        g.insert(&t("a", "p", Term::uri("b")));
        let sat = saturate(&mut g);
        assert_eq!(sat.len(), 1);
    }

    #[test]
    fn domain_of_superproperty_types_subproperty_subjects() {
        // p ⊑ q, dom(q) = C, (a p b) ⟹ a type C.
        let mut g = Graph::new();
        g.extend(&[
            t("p", vocab::RDFS_SUBPROPERTY_OF, Term::uri("q")),
            t("q", vocab::RDFS_DOMAIN, Term::uri("C")),
            t("a", "p", Term::uri("b")),
        ]);
        let sat = saturate(&mut g);
        assert!(contains(&g, &sat, "a", vocab::RDF_TYPE, Term::uri("C")));
        assert!(contains(&g, &sat, "a", "q", Term::uri("b")));
    }

    #[test]
    fn schema_triples_materialize_the_closure() {
        let mut g = paper_graph();
        let closure = g.schema_closure();
        let st = schema_triples(&mut g, &closure);
        let d = g.dict();
        let book = d.lookup(&Term::uri("Book")).unwrap();
        let publication = d.lookup(&Term::uri("Publication")).unwrap();
        let subclass = d.lookup(&Term::uri(vocab::RDFS_SUBCLASS_OF)).unwrap();
        assert!(st.binary_search(&TripleId::new(book, subclass, publication)).is_ok());
        // Widened domain: writtenBy rdfs:domain Publication is entailed.
        let written_by = d.lookup(&Term::uri("writtenBy")).unwrap();
        let domain = d.lookup(&Term::uri(vocab::RDFS_DOMAIN)).unwrap();
        assert!(st.binary_search(&TripleId::new(written_by, domain, publication)).is_ok());
    }

    #[test]
    fn chained_subclasses_fully_expand() {
        let mut g = Graph::new();
        g.extend(&[
            t("A", vocab::RDFS_SUBCLASS_OF, Term::uri("B")),
            t("B", vocab::RDFS_SUBCLASS_OF, Term::uri("C")),
            t("x", vocab::RDF_TYPE, Term::uri("A")),
        ]);
        let sat = saturate(&mut g);
        assert!(contains(&g, &sat, "x", vocab::RDF_TYPE, Term::uri("B")));
        assert!(contains(&g, &sat, "x", vocab::RDF_TYPE, Term::uri("C")));
        assert_eq!(sat.len(), 3);
    }
}
