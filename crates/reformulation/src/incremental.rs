//! Incremental saturation maintenance.
//!
//! The paper's case for reformulation is that "if the RDF graph is
//! updated, the cost of maintaining the saturation may be very high"
//! (§5.3, citing \[4\]). This module makes that trade-off measurable: it
//! maintains the saturation **incrementally** under data insertions and
//! deletions, the multi-set/counting technique of \[4\].
//!
//! Correctness rests on a property of the DB fragment with a *closed*
//! schema: every entailed triple is derived **directly** from a single
//! explicit triple (see [`crate::saturation`]) — derivations never
//! chain through other derived triples. Each derived triple can
//! therefore carry an exact count of its derivations from explicit
//! triples:
//!
//! * insert `t`: add `t` as explicit, `+1` each of its consequences;
//! * delete `t`: remove `t`, `-1` each of its consequences; a derived
//!   triple disappears when its count reaches zero (and it is not
//!   itself explicit).
//!
//! Schema (constraint) updates change the closure itself and require a
//! rebuild; [`IncrementalSaturation::new`] performs it.

use jucq_model::{FxHashMap, FxHashSet, SchemaClosure, TermId, TripleId};

/// A saturation maintained under data insertions/deletions.
#[derive(Debug, Clone)]
pub struct IncrementalSaturation {
    closure: SchemaClosure,
    rdf_type: TermId,
    explicit: FxHashSet<TripleId>,
    /// Derivation counts of entailed triples (0-count entries removed).
    derived: FxHashMap<TripleId, u32>,
}

/// The net effect of one update on the saturated triple set.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SaturationDelta {
    /// Triples that newly entered the saturation.
    pub added: Vec<TripleId>,
    /// Triples that left the saturation.
    pub removed: Vec<TripleId>,
}

impl IncrementalSaturation {
    /// Build from an initial set of explicit data triples and a closed
    /// schema.
    pub fn new(
        data: &[TripleId],
        closure: SchemaClosure,
        rdf_type: TermId,
    ) -> IncrementalSaturation {
        let mut sat = IncrementalSaturation {
            closure,
            rdf_type,
            explicit: FxHashSet::default(),
            derived: FxHashMap::default(),
        };
        for &t in data {
            sat.insert(t);
        }
        sat
    }

    /// The one-pass consequences of one explicit triple (rdfs7/2/3/9
    /// over the closed schema). Deterministic, so inserts and deletes
    /// count symmetrically.
    fn consequences(&self, t: &TripleId) -> Vec<TripleId> {
        let mut out = Vec::new();
        if t.p == self.rdf_type {
            if t.o.is_uri() {
                for &sup in self.closure.super_classes(t.o) {
                    out.push(TripleId::new(t.s, self.rdf_type, sup));
                }
            }
        } else {
            for &sup in self.closure.super_properties(t.p) {
                out.push(TripleId::new(t.s, sup, t.o));
            }
            for &c in self.closure.domains(t.p) {
                out.push(TripleId::new(t.s, self.rdf_type, c));
            }
            for &c in self.closure.ranges(t.p) {
                out.push(TripleId::new(t.o, self.rdf_type, c));
            }
        }
        out
    }

    /// True iff `t` is in the saturation (explicit or derived).
    pub fn contains(&self, t: &TripleId) -> bool {
        self.explicit.contains(t) || self.derived.contains_key(t)
    }

    /// Number of triples in the saturation.
    pub fn len(&self) -> usize {
        // Derived triples that are also explicit must not double-count.
        self.explicit.len() + self.derived.keys().filter(|t| !self.explicit.contains(t)).count()
    }

    /// True iff the saturation is empty.
    pub fn is_empty(&self) -> bool {
        self.explicit.is_empty() && self.derived.is_empty()
    }

    /// Insert an explicit triple; returns the saturation delta.
    pub fn insert(&mut self, t: TripleId) -> SaturationDelta {
        let mut delta = SaturationDelta::default();
        if !self.explicit.insert(t) {
            return delta;
        }
        if !self.derived.contains_key(&t) {
            delta.added.push(t);
        }
        for c in self.consequences(&t) {
            let count = self.derived.entry(c).or_insert(0);
            *count += 1;
            if *count == 1 && !self.explicit.contains(&c) && c != t {
                delta.added.push(c);
            }
        }
        delta
    }

    /// Delete an explicit triple; returns the saturation delta.
    pub fn delete(&mut self, t: &TripleId) -> SaturationDelta {
        let mut delta = SaturationDelta::default();
        if !self.explicit.remove(t) {
            return delta;
        }
        for c in self.consequences(t) {
            match self.derived.get_mut(&c) {
                Some(count) => {
                    *count -= 1;
                    if *count == 0 {
                        self.derived.remove(&c);
                        if !self.explicit.contains(&c) {
                            delta.removed.push(c);
                        }
                    }
                }
                None => unreachable!("counts are maintained symmetrically"),
            }
        }
        if !self.derived.contains_key(t) && !delta.removed.contains(t) {
            delta.removed.push(*t);
        }
        delta
    }

    /// The full saturated triple set, sorted.
    pub fn triples(&self) -> Vec<TripleId> {
        let mut out: Vec<TripleId> = self.explicit.iter().copied().collect();
        out.extend(self.derived.keys().filter(|t| !self.explicit.contains(t)));
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturation::saturate_with;
    use jucq_model::{vocab, Graph, Schema, Term, Triple};

    struct Fixture {
        closure: SchemaClosure,
        rdf_type: TermId,
        graph: Graph,
    }

    fn fixture() -> Fixture {
        let mut graph = Graph::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        graph.extend(&[
            t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
            t("writtenBy", vocab::RDFS_DOMAIN, Term::uri("Book")),
            t("writtenBy", vocab::RDFS_RANGE, Term::uri("Person")),
        ]);
        let closure = graph.schema_closure();
        let rdf_type = graph.rdf_type();
        Fixture { closure, rdf_type, graph }
    }

    fn tid(f: &mut Fixture, s: &str, p: &str, o: &str) -> TripleId {
        let d = f.graph.dict_mut();
        TripleId::new(d.encode_uri(s), d.encode_uri(p), d.encode_uri(o))
    }

    #[test]
    fn matches_full_saturation_after_inserts() {
        let mut f = fixture();
        let t1 = tid(&mut f, "doi1", "writtenBy", "a1");
        let ty = f.rdf_type;
        let book = f.graph.dict_mut().encode_uri("Book");
        let t2 = TripleId::new(t1.s, ty, book);
        let data = vec![t1, t2];
        let mut sat = IncrementalSaturation::new(&[], f.closure.clone(), f.rdf_type);
        for &t in &data {
            sat.insert(t);
        }
        let full = saturate_with(&data, &f.closure, f.rdf_type);
        assert_eq!(sat.triples(), full);
        assert_eq!(sat.len(), full.len());
    }

    #[test]
    fn delete_reverts_insert_exactly() {
        let mut f = fixture();
        let base = tid(&mut f, "doi0", "hasAuthor", "a0");
        let t1 = tid(&mut f, "doi1", "writtenBy", "a1");
        let mut sat = IncrementalSaturation::new(&[base], f.closure.clone(), f.rdf_type);
        let before = sat.triples();
        let added = sat.insert(t1);
        assert!(!added.added.is_empty());
        let removed = sat.delete(&t1);
        assert_eq!(sat.triples(), before, "delete must undo insert");
        let mut a = added.added;
        let mut r = removed.removed;
        a.sort_unstable();
        r.sort_unstable();
        assert_eq!(a, r, "delta symmetry");
    }

    #[test]
    fn shared_derivations_survive_partial_deletion() {
        // Two writtenBy triples with the same subject both derive
        // (doi, τ, Book); deleting one must keep the type.
        let mut f = fixture();
        let t1 = tid(&mut f, "doi", "writtenBy", "a1");
        let t2 = tid(&mut f, "doi", "writtenBy", "a2");
        let ty = f.rdf_type;
        let book = f.graph.dict_mut().encode_uri("Book");
        let typed = TripleId::new(t1.s, ty, book);
        let mut sat = IncrementalSaturation::new(&[t1, t2], f.closure.clone(), f.rdf_type);
        assert!(sat.contains(&typed));
        let delta = sat.delete(&t1);
        assert!(sat.contains(&typed), "second derivation still stands");
        assert!(!delta.removed.contains(&typed));
        sat.delete(&t2);
        assert!(!sat.contains(&typed), "last derivation gone");
    }

    #[test]
    fn explicit_triples_survive_losing_their_derivations() {
        // (doi τ Book) both explicit and derived: deleting the deriving
        // triple must keep it (it is still asserted).
        let mut f = fixture();
        let t1 = tid(&mut f, "doi", "writtenBy", "a1");
        let ty = f.rdf_type;
        let book = f.graph.dict_mut().encode_uri("Book");
        let typed = TripleId::new(t1.s, ty, book);
        let mut sat = IncrementalSaturation::new(&[t1, typed], f.closure.clone(), f.rdf_type);
        sat.delete(&t1);
        assert!(sat.contains(&typed));
        // And its superclass consequence too.
        let publication = f.graph.dict_mut().encode_uri("Publication");
        assert!(sat.contains(&TripleId::new(t1.s, ty, publication)));
    }

    #[test]
    fn duplicate_inserts_and_phantom_deletes_are_noops() {
        let mut f = fixture();
        let t1 = tid(&mut f, "doi", "writtenBy", "a1");
        let mut sat = IncrementalSaturation::new(&[t1], f.closure.clone(), f.rdf_type);
        let before = sat.triples();
        assert_eq!(sat.insert(t1), SaturationDelta::default());
        let other = tid(&mut f, "x", "writtenBy", "y");
        assert_eq!(sat.delete(&other), SaturationDelta::default());
        assert_eq!(sat.triples(), before);
    }

    #[test]
    fn empty_schema_is_identity() {
        let closure = SchemaClosure::new(&Schema::new(), [], []);
        let mut g = Graph::new();
        let rdf_type = g.rdf_type();
        let t = TripleId::new(
            g.dict_mut().encode_uri("a"),
            g.dict_mut().encode_uri("p"),
            g.dict_mut().encode_uri("b"),
        );
        let mut sat = IncrementalSaturation::new(&[], closure, rdf_type);
        let delta = sat.insert(t);
        assert_eq!(delta.added, vec![t]);
        assert_eq!(sat.len(), 1);
    }

    #[test]
    fn self_loop_double_derivation_counts_correctly() {
        // (s p s) with dom(p) = rng(p) = C derives (s τ C) twice; one
        // delete must remove both counts.
        let mut g = Graph::new();
        let t = |s: &str, p: &str, o: &str| Triple::new(Term::uri(s), Term::uri(p), Term::uri(o));
        g.extend(&[t("p", vocab::RDFS_DOMAIN, "C"), t("p", vocab::RDFS_RANGE, "C")]);
        let closure = g.schema_closure();
        let rdf_type = g.rdf_type();
        let s = g.dict_mut().encode_uri("s");
        let p = g.dict_mut().encode_uri("p");
        let loop_t = TripleId::new(s, p, s);
        let mut sat = IncrementalSaturation::new(&[loop_t], closure, rdf_type);
        let c = g.dict_mut().encode_uri("C");
        let typed = TripleId::new(s, rdf_type, c);
        assert!(sat.contains(&typed));
        sat.delete(&loop_t);
        assert!(!sat.contains(&typed));
        assert!(sat.is_empty());
    }
}
