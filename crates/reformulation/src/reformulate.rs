//! CQ-to-UCQ query reformulation (backward chaining).
//!
//! The paper answers queries by reformulating them against the RDFS
//! constraints: `Reformulate(q, db) = q_ref` such that
//! `q(db∞) = q_ref(db)` (§2.3). Its reference algorithm \[4, 23\]
//! "exhaustively applies a set of 13 reformulation rules" over the
//! direct constraints. We implement the same fixpoint over the
//! **closed** schema ([`jucq_model::SchemaClosure`]), which folds the
//! hierarchy-traversal rules of \[4\] into the closure and leaves six
//! single-step rules; schema-level query atoms need no rules at all
//! because both stores materialize the closed schema triples
//! (see [`crate::saturation::schema_triples`]). For an atom `g` of a
//! CQ, with `τ = rdf:type`:
//!
//! | rule | atom shape | produces |
//! |------|-----------|----------|
//! | R1 | `(e, τ, C)` | `(e, τ, C′)` for every `C′ ⊑꜀⁺ C` |
//! | R2 | `(e, τ, C)` | `(e, p, fresh)` for every `p` with `C ∈ dom⁺(p)` |
//! | R3 | `(e, τ, C)` | `(fresh, p, e)` for every `p` with `C ∈ rng⁺(p)` |
//! | R4 | `(s, p, o)` | `(s, p′, o)` for every `p′ ⊑ₚ⁺ p` |
//! | R5 | `(e, τ, y)`, `y` a variable | the CQ with `y := C` substituted throughout, for every known class `C` (paper Example 4) |
//! | R6 | `(s, y, o)`, `y` a variable | the CQ with `y := p` for every known property `p`, and `y := τ` |
//!
//! The union always contains the original query; duplicates are removed
//! by canonicalizing each CQ (sorted atoms, canonical renaming of
//! non-head variables).

use std::collections::VecDeque;

use jucq_model::{FxHashMap, FxHashSet, SchemaClosure, TermId};
use jucq_store::{PatternTerm, StoreCq, StorePattern, StoreUcq, VarId};

use crate::bgp::BgpQuery;

/// Everything reformulation needs about the database: the closed schema
/// and the id of `rdf:type`.
#[derive(Debug, Clone, Copy)]
pub struct ReformulationEnv<'a> {
    /// The saturated schema.
    pub closure: &'a SchemaClosure,
    /// The dictionary id of `rdf:type`.
    pub rdf_type: TermId,
}

/// A CQ under construction: head terms (variables, or constants after
/// variable instantiation) plus body atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WorkCq {
    head: Vec<PatternTerm>,
    atoms: Vec<StorePattern>,
}

impl WorkCq {
    fn head_vars(&self) -> FxHashSet<VarId> {
        self.head.iter().filter_map(|t| t.as_var()).collect()
    }

    fn max_var(&self) -> Option<VarId> {
        let body = self.atoms.iter().flat_map(StorePattern::variables).max();
        let head = self.head.iter().filter_map(|t| t.as_var()).max();
        body.max(head)
    }
}

/// Canonicalize: sort atoms with a head-variable-stable key, rename
/// non-head (existential) variables in first-occurrence order, re-sort,
/// and drop duplicate atoms (idempotent in a join).
fn normalize(mut cq: WorkCq) -> WorkCq {
    let head_vars = cq.head_vars();
    let base: VarId = head_vars.iter().copied().max().map_or(0, |m| m + 1);

    let pre_key = |t: &PatternTerm| -> (u8, u32) {
        match t {
            PatternTerm::Const(c) => (0, c.raw()),
            PatternTerm::Var(v) if head_vars.contains(v) => (1, u32::from(*v)),
            PatternTerm::Var(_) => (2, 0),
        }
    };
    cq.atoms.sort_by_key(|a| [pre_key(&a.s), pre_key(&a.p), pre_key(&a.o)]);

    let mut rename: FxHashMap<VarId, VarId> = FxHashMap::default();
    let mut next = base;
    let mut mapped = |v: VarId, rename: &mut FxHashMap<VarId, VarId>| -> VarId {
        if head_vars.contains(&v) {
            return v;
        }
        *rename.entry(v).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    };
    for a in &mut cq.atoms {
        for pos in [&mut a.s, &mut a.p, &mut a.o] {
            if let PatternTerm::Var(v) = pos {
                *pos = PatternTerm::Var(mapped(*v, &mut rename));
            }
        }
    }
    cq.atoms.sort();
    cq.atoms.dedup();
    cq
}

/// Apply a single-variable substitution to the whole CQ (head + body).
fn substitute(cq: &WorkCq, var: VarId, value: TermId) -> WorkCq {
    let subst = |t: &PatternTerm| -> PatternTerm {
        match t {
            PatternTerm::Var(v) if *v == var => PatternTerm::Const(value),
            other => *other,
        }
    };
    WorkCq {
        head: cq.head.iter().map(subst).collect(),
        atoms: cq
            .atoms
            .iter()
            .map(|a| StorePattern::new(subst(&a.s), subst(&a.p), subst(&a.o)))
            .collect(),
    }
}

/// Replace atom `ai` with `new_atom`.
fn replace_atom(cq: &WorkCq, ai: usize, new_atom: StorePattern) -> WorkCq {
    let mut atoms = cq.atoms.clone();
    atoms[ai] = new_atom;
    WorkCq { head: cq.head.clone(), atoms }
}

/// All one-step reformulations of `cq`.
fn successors(cq: &WorkCq, env: &ReformulationEnv<'_>) -> Vec<WorkCq> {
    let mut out = Vec::new();
    let mut next_fresh: VarId = cq.max_var().map_or(0, |m| m + 1);
    let closure: &SchemaClosure = env.closure;

    for (ai, atom) in cq.atoms.iter().enumerate() {
        match atom.p {
            PatternTerm::Const(p) if p == env.rdf_type => match atom.o {
                // Class atom (e, τ, C).
                PatternTerm::Const(c) => {
                    if !c.is_uri() {
                        continue;
                    }
                    // R1: subclasses.
                    for &sub in closure.sub_classes(c) {
                        if sub != c {
                            out.push(replace_atom(
                                cq,
                                ai,
                                StorePattern::new(atom.s, atom.p, PatternTerm::Const(sub)),
                            ));
                        }
                    }
                    // R2: properties whose domain entails C.
                    for &p in closure.properties_with_domain(c) {
                        let fresh = PatternTerm::Var(next_fresh);
                        next_fresh += 1;
                        out.push(replace_atom(
                            cq,
                            ai,
                            StorePattern::new(atom.s, PatternTerm::Const(p), fresh),
                        ));
                    }
                    // R3: properties whose range entails C.
                    for &p in closure.properties_with_range(c) {
                        let fresh = PatternTerm::Var(next_fresh);
                        next_fresh += 1;
                        out.push(replace_atom(
                            cq,
                            ai,
                            StorePattern::new(fresh, PatternTerm::Const(p), atom.s),
                        ));
                    }
                }
                // Class-variable atom (e, τ, y): R5 instantiation.
                PatternTerm::Var(y) => {
                    for &c in closure.classes() {
                        out.push(substitute(cq, y, c));
                    }
                }
            },
            // Property atom (s, p, o), p ≠ τ: R4 subproperties.
            PatternTerm::Const(p) => {
                for &sub in closure.sub_properties(p) {
                    if sub != p {
                        out.push(replace_atom(
                            cq,
                            ai,
                            StorePattern::new(atom.s, PatternTerm::Const(sub), atom.o),
                        ));
                    }
                }
            }
            // Property-variable atom (s, y, o): R6 instantiation.
            PatternTerm::Var(y) => {
                for &p in closure.properties() {
                    out.push(substitute(cq, y, p));
                }
                out.push(substitute(cq, y, env.rdf_type));
            }
        }
    }
    out
}

/// Reformulate `q` into its full UCQ (the paper's `q_ref`).
///
/// The result's first member is always the original query; members are
/// produced in breadth-first derivation order, deduplicated modulo
/// canonical renaming of existential variables.
pub fn reformulate(q: &BgpQuery, env: &ReformulationEnv<'_>) -> StoreUcq {
    reformulate_with_limit(q, env, usize::MAX).expect("no limit")
}

/// The variables of an atom that the instantiation rules (R5/R6) may
/// substitute throughout the query: a property-position variable, and
/// the object variable of a (present or R6-producible) `rdf:type` atom.
fn instantiable_vars(atom: &StorePattern, rdf_type: TermId) -> Vec<VarId> {
    let mut out = Vec::new();
    match atom.p {
        PatternTerm::Var(y) => {
            out.push(y);
            // R6 can turn `y` into rdf:type, making the object a class
            // variable.
            if let PatternTerm::Var(o) = atom.o {
                if !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        PatternTerm::Const(p) if p == rdf_type => {
            if let PatternTerm::Var(o) = atom.o {
                out.push(o);
            }
        }
        PatternTerm::Const(_) => {}
    }
    out
}

/// True iff the per-atom product decomposition is exact: no atom's
/// instantiable variable occurs in any other atom, so no rule
/// application ever rewrites two atoms at once.
fn atoms_independent(q: &BgpQuery, rdf_type: TermId) -> bool {
    for (i, atom) in q.atoms.iter().enumerate() {
        for v in instantiable_vars(atom, rdf_type) {
            for (j, other) in q.atoms.iter().enumerate() {
                if i != j && other.variables().contains(&v) {
                    return false;
                }
            }
        }
    }
    true
}

/// Fast path: reformulate each atom independently and take the
/// cartesian product of the member sets. Exact when
/// [`atoms_independent`] holds; reformulation sizes then multiply
/// across atoms, which is exactly the paper's arithmetic (q1: 188 × 4
/// × 3 = 2256).
fn reformulate_product(
    q: &BgpQuery,
    env: &ReformulationEnv<'_>,
    limit: usize,
) -> Result<StoreUcq, usize> {
    let global_max: VarId = q.max_var().map_or(0, |m| m + 1);
    // Per-atom member lists: (rewritten atom, substitution of the
    // atom's original head vars).
    type Member = (StorePattern, Vec<(VarId, PatternTerm)>);
    let mut per_atom: Vec<Vec<Member>> = Vec::new();
    let mut total: usize = 1;
    for (ai, atom) in q.atoms.iter().enumerate() {
        let atom_vars = atom.variables();
        let sub_q = BgpQuery { head: atom_vars.to_vec(), atoms: vec![*atom], limit: None };
        let ucq = reformulate_fixpoint(&sub_q, env, limit)?;
        let mut members = Vec::with_capacity(ucq.len());
        for m in &ucq.cqs {
            debug_assert_eq!(m.patterns.len(), 1);
            let mut rewritten = m.patterns[0];
            // Remap the member's fresh (non-original) variable, if any,
            // into a range unique to this atom so members of different
            // atoms never accidentally join.
            let fresh_slot = global_max + 1 + (ai as VarId);
            for pos in [&mut rewritten.s, &mut rewritten.p, &mut rewritten.o] {
                if let PatternTerm::Var(v) = pos {
                    if !atom_vars.contains(v) {
                        *pos = PatternTerm::Var(fresh_slot);
                    }
                }
            }
            let subst: Vec<(VarId, PatternTerm)> = atom_vars
                .iter()
                .zip(&m.head)
                .filter(|(v, t)| PatternTerm::Var(**v) != **t)
                .map(|(v, t)| (*v, *t))
                .collect();
            members.push((rewritten, subst));
        }
        total = total.saturating_mul(members.len());
        if total > limit {
            return Err(total);
        }
        per_atom.push(members);
    }

    // Cartesian product.
    let head_terms: Vec<PatternTerm> = q.head.iter().map(|&v| PatternTerm::Var(v)).collect();
    let mut seen: FxHashSet<WorkCq> = FxHashSet::default();
    let mut result: Vec<StoreCq> = Vec::with_capacity(total);
    let mut indices = vec![0usize; per_atom.len()];
    loop {
        let mut head = head_terms.clone();
        let mut atoms = Vec::with_capacity(per_atom.len());
        for (ai, &k) in indices.iter().enumerate() {
            let (atom, subst) = &per_atom[ai][k];
            atoms.push(*atom);
            for (v, t) in subst {
                for h in &mut head {
                    if *h == PatternTerm::Var(*v) {
                        *h = *t;
                    }
                }
            }
        }
        let n = normalize(WorkCq { head, atoms });
        if seen.insert(n.clone()) {
            result.push(StoreCq::new(n.atoms, n.head));
            if result.len() > limit {
                return Err(result.len());
            }
        }
        // Advance the mixed-radix counter.
        let mut pos = indices.len();
        loop {
            if pos == 0 {
                return Ok(StoreUcq::new(result, q.head.clone()));
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < per_atom[pos].len() {
                break;
            }
            indices[pos] = 0;
        }
    }
}

/// Like [`reformulate`] but aborting once more than `limit` member CQs
/// have been produced; `Err(n)` reports the lower bound `n > limit`
/// reached. Lets callers detect "union too large for any engine"
/// without materializing millions of members.
pub fn reformulate_with_limit(
    q: &BgpQuery,
    env: &ReformulationEnv<'_>,
    limit: usize,
) -> Result<StoreUcq, usize> {
    if q.atoms.len() > 1 && atoms_independent(q, env.rdf_type) {
        return reformulate_product(q, env, limit);
    }
    reformulate_fixpoint(q, env, limit)
}

/// The general breadth-first fixpoint. Exposed for the ablation
/// benchmarks comparing it against the product fast path; prefer
/// [`reformulate_with_limit`], which dispatches automatically.
pub fn reformulate_fixpoint(
    q: &BgpQuery,
    env: &ReformulationEnv<'_>,
    limit: usize,
) -> Result<StoreUcq, usize> {
    let start = normalize(WorkCq {
        head: q.head.iter().map(|&v| PatternTerm::Var(v)).collect(),
        atoms: q.atoms.clone(),
    });
    let mut seen: FxHashSet<WorkCq> = FxHashSet::default();
    seen.insert(start.clone());
    let mut queue: VecDeque<WorkCq> = VecDeque::new();
    queue.push_back(start);
    let mut result: Vec<StoreCq> = Vec::new();

    while let Some(cq) = queue.pop_front() {
        result.push(StoreCq::new(cq.atoms.clone(), cq.head.clone()));
        if result.len() + queue.len() > limit {
            return Err(result.len() + queue.len());
        }
        for succ in successors(&cq, env) {
            let n = normalize(succ);
            if seen.insert(n.clone()) {
                queue.push_back(n);
            }
        }
    }
    Ok(StoreUcq::new(result, q.head.clone()))
}

/// The number of member CQs of the reformulation (the paper's `|q_ref|`
/// reported throughout Tables 1–4), up to `limit`.
pub fn reformulation_size(q: &BgpQuery, env: &ReformulationEnv<'_>, limit: usize) -> usize {
    match reformulate_with_limit(q, env, limit) {
        Ok(ucq) => ucq.len(),
        Err(n) => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::{Graph, Schema, Term, Triple};

    fn c(id: TermId) -> PatternTerm {
        PatternTerm::Const(id)
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// The paper's Example 1/2 database with its schema.
    struct Fixture {
        graph: Graph,
        rdf_type: TermId,
    }

    fn fixture() -> Fixture {
        let mut graph = Graph::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        graph.extend(&[
            t("doi1", jucq_model::vocab::RDF_TYPE, Term::uri("Book")),
            t("doi1", "writtenBy", Term::blank("b1")),
            t("Book", jucq_model::vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", jucq_model::vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
            t("writtenBy", jucq_model::vocab::RDFS_DOMAIN, Term::uri("Book")),
            t("writtenBy", jucq_model::vocab::RDFS_RANGE, Term::uri("Person")),
        ]);
        let rdf_type = graph.rdf_type();
        Fixture { graph, rdf_type }
    }

    fn uri(f: &Fixture, s: &str) -> TermId {
        f.graph.dict().lookup(&Term::uri(s)).expect("known uri")
    }

    #[test]
    fn example4_class_variable_query() {
        // q(x, y):- x rdf:type y over the Example 2 schema. The paper's
        // Example 4 lists 11 items, but its items (3), (7) and (10)
        // replace `writtenBy` by its *super*property `hasAuthor`, which
        // is unsound for certain-answer semantics (an explicit hasAuthor
        // triple entails no type, since hasAuthor declares no domain or
        // range) and would break the paper's own Definition 3.2
        // (`q_JUCQ(db₂) = q(db₂)` for every db₂ with the same schema).
        // We produce the sound subset: items (0), (1), (2), (4), (5),
        // (6), (8), (9) — 8 members. DESIGN.md records the deviation.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = BgpQuery::new(vec![0, 1], vec![StorePattern::new(v(0), c(f.rdf_type), v(1))]);
        let ucq = reformulate(&q, &env);
        assert_eq!(ucq.len(), 8, "sound subset of paper Example 4");

        // Spot-check members.
        let book = uri(&f, "Book");
        let publication = uri(&f, "Publication");
        let written_by = uri(&f, "writtenBy");
        let has_author = uri(&f, "hasAuthor");
        let person = uri(&f, "Person");
        // (2): q(x, Book):- x writtenBy z.
        assert!(ucq.cqs.iter().any(|m| m.head[1] == c(book)
            && m.patterns.len() == 1
            && m.patterns[0].p == c(written_by)
            && m.patterns[0].s == v(0)));
        // (6): q(x, Publication):- x writtenBy z (widened domain).
        assert!(ucq.cqs.iter().any(|m| m.head[1] == c(publication)
            && m.patterns[0].p == c(written_by)
            && m.patterns[0].s == v(0)));
        // (9): q(x, Person):- z writtenBy x (range).
        assert!(ucq.cqs.iter().any(|m| m.head[1] == c(person)
            && m.patterns[0].p == c(written_by)
            && m.patterns[0].o == v(0)));
        // The unsound (3)/(7)/(10) members must NOT appear: no member
        // uses hasAuthor in a type-deriving position.
        assert!(!ucq.cqs.iter().any(
            |m| m.patterns[0].p == c(has_author) && matches!(m.head[1], PatternTerm::Const(_))
        ));
    }

    #[test]
    fn class_atom_reformulation() {
        // q(x):- x rdf:type Publication: original + subclass Book +
        // domain writtenBy ⇒ 3 members.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let publication = uri(&f, "Publication");
        let q =
            BgpQuery::new(vec![0], vec![StorePattern::new(v(0), c(f.rdf_type), c(publication))]);
        let ucq = reformulate(&q, &env);
        assert_eq!(ucq.len(), 3);
        // First member is the original.
        assert_eq!(ucq.cqs[0].patterns[0].o, c(publication));
    }

    #[test]
    fn property_atom_reformulation() {
        // q(x, z):- x hasAuthor z: original + subproperty writtenBy.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let has_author = uri(&f, "hasAuthor");
        let written_by = uri(&f, "writtenBy");
        let q = BgpQuery::new(vec![0, 1], vec![StorePattern::new(v(0), c(has_author), v(1))]);
        let ucq = reformulate(&q, &env);
        assert_eq!(ucq.len(), 2);
        assert!(ucq.cqs.iter().any(|m| m.patterns[0].p == c(written_by)));
    }

    #[test]
    fn no_schema_means_identity_reformulation() {
        let closure = jucq_model::SchemaClosure::new(&Schema::new(), [], []);
        let mut g = Graph::new();
        let rdf_type = g.rdf_type();
        let env = ReformulationEnv { closure: &closure, rdf_type };
        let p = TermId::new(jucq_model::term::TermKind::Uri, 5);
        let q = BgpQuery::new(vec![0], vec![StorePattern::new(v(0), c(p), v(1))]);
        let ucq = reformulate(&q, &env);
        assert_eq!(ucq.len(), 1);
        assert_eq!(ucq.cqs[0].patterns, q.atoms);
    }

    #[test]
    fn multi_atom_counts_multiply_when_independent() {
        // (x τ Publication)(x hasAuthor y): 3 × 2 = 6 members, because
        // no variable links the two atoms' reformulations.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let publication = uri(&f, "Publication");
        let has_author = uri(&f, "hasAuthor");
        let q = BgpQuery::new(
            vec![0, 1],
            vec![
                StorePattern::new(v(0), c(f.rdf_type), c(publication)),
                StorePattern::new(v(0), c(has_author), v(1)),
            ],
        );
        let ucq = reformulate(&q, &env);
        assert_eq!(ucq.len(), 6);
    }

    #[test]
    fn duplicate_derivations_are_collapsed() {
        // (x τ Publication)(x τ Book): Book ⊑ Publication makes several
        // derivation paths converge on identical CQs; the fixpoint must
        // dedup them. All members must be distinct.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let publication = uri(&f, "Publication");
        let book = uri(&f, "Book");
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(v(0), c(f.rdf_type), c(publication)),
                StorePattern::new(v(0), c(f.rdf_type), c(book)),
            ],
        );
        let ucq = reformulate(&q, &env);
        let mut seen = FxHashSet::default();
        for m in &ucq.cqs {
            assert!(seen.insert(m.clone()), "duplicate member {m:?}");
        }
    }

    #[test]
    fn limit_aborts_early() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = BgpQuery::new(vec![0, 1], vec![StorePattern::new(v(0), c(f.rdf_type), v(1))]);
        match reformulate_with_limit(&q, &env, 3) {
            Err(n) => assert!(n > 3),
            Ok(u) => panic!("expected limit abort, got {} members", u.len()),
        }
        assert_eq!(reformulation_size(&q, &env, usize::MAX), 8);
    }

    #[test]
    fn product_fast_path_matches_fixpoint() {
        // Multi-atom independent query: the product decomposition must
        // produce exactly the fixpoint's member set.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let publication = uri(&f, "Publication");
        let has_author = uri(&f, "hasAuthor");
        let q = BgpQuery::new(
            vec![0, 1, 2],
            vec![
                StorePattern::new(v(0), c(f.rdf_type), v(2)),
                StorePattern::new(v(0), c(has_author), v(1)),
                StorePattern::new(v(1), c(f.rdf_type), c(publication)),
            ],
        );
        assert!(super::atoms_independent(&q, f.rdf_type));
        let fast = super::reformulate_product(&q, &env, usize::MAX).unwrap();
        let slow = super::reformulate_fixpoint(&q, &env, usize::MAX).unwrap();
        let norm = |u: &StoreUcq| {
            let mut v: Vec<StoreCq> = u.cqs.clone();
            v.sort_by_key(|m| format!("{m:?}"));
            v
        };
        assert_eq!(norm(&fast), norm(&slow));
    }

    #[test]
    fn interaction_disables_fast_path() {
        // (x τ y)(z p y): y is instantiable in atom 0 and occurs in
        // atom 1 ⇒ not independent.
        let f = fixture();
        let has_author = uri(&f, "hasAuthor");
        let q = BgpQuery::new(
            vec![0, 1],
            vec![
                StorePattern::new(v(0), c(f.rdf_type), v(1)),
                StorePattern::new(v(2), c(has_author), v(1)),
            ],
        );
        assert!(!super::atoms_independent(&q, f.rdf_type));
        // Still must produce a correct (fixpoint) reformulation.
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let ucq = reformulate(&q, &env);
        assert!(!ucq.is_empty());
    }

    #[test]
    fn fresh_variables_do_not_leak_into_heads() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let publication = uri(&f, "Publication");
        let q =
            BgpQuery::new(vec![0], vec![StorePattern::new(v(0), c(f.rdf_type), c(publication))]);
        let ucq = reformulate(&q, &env);
        for m in &ucq.cqs {
            assert_eq!(m.head.len(), 1);
            assert_eq!(m.head[0], v(0));
        }
    }

    #[test]
    fn property_variable_instantiation_reaches_subproperties() {
        // q(x, y, z):- x y z must include the member (x writtenBy z)
        // with head y := hasAuthor, capturing entailed hasAuthor triples.
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = BgpQuery::new(vec![0, 1, 2], vec![StorePattern::new(v(0), v(1), v(2))]);
        let ucq = reformulate(&q, &env);
        let written_by = uri(&f, "writtenBy");
        let has_author = uri(&f, "hasAuthor");
        assert!(ucq
            .cqs
            .iter()
            .any(|m| m.head[1] == c(has_author) && m.patterns[0].p == c(written_by)));
        // And the rdf:type branch with class instantiation.
        let book = uri(&f, "Book");
        assert!(ucq.cqs.iter().any(|m| m.head[1] == c(f.rdf_type)
            && m.head[2] == c(book)
            && m.patterns[0].p == c(written_by)));
    }
}
