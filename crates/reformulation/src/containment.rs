//! Conjunctive-query containment and union minimization.
//!
//! The classical tool behind "minimal" reformulations in the paper's
//! related work \[14, 15\]: member `q₂` of a union is redundant when it is
//! **contained** in another member `q₁` (`q₂ ⊑ q₁`), i.e. there is a
//! homomorphism from `q₁`'s body to `q₂`'s body mapping `q₁`'s head to
//! `q₂`'s head (Chandra–Merlin). Exhaustive reformulation algorithms —
//! including the paper's reference algorithm, see its Example 4 where
//! items (1), (4) and (8) are instantiations subsumed by item (0) —
//! produce such members; [`minimize_ucq`] drops them without changing
//! the union's answers.
//!
//! Containment is NP-complete in general; the queries here are tiny
//! (≤ 10 atoms), so plain backtracking is fine. Minimizing a union is
//! quadratic in its member count, so it is an *opt-in* optimization
//! (see the `minimize` Criterion bench for the trade-off).

use jucq_model::FxHashMap;
use jucq_store::{PatternTerm, StoreCq, StoreUcq, VarId};

/// A (partial) variable assignment for the candidate homomorphism.
type Assignment = FxHashMap<VarId, PatternTerm>;

/// Apply the assignment to one term (variables unmapped so far stay).
fn image(t: PatternTerm, a: &Assignment) -> PatternTerm {
    match t {
        PatternTerm::Var(v) => a.get(&v).copied().unwrap_or(t),
        c => c,
    }
}

/// Try to unify term `from` (of the container query) with term `to`
/// (of the contained query) under `a`; extends `a` on success.
///
/// A variable already mapped — whether to a constant or to a variable
/// of the contained query — must map to exactly `to` again; matching
/// on the *image* here instead would drop into the variable arm when
/// the image is a variable and silently rebind it under the contained
/// query's id, accepting homomorphisms that break join variables
/// (found by the differential fuzzer: minimization then drops
/// non-redundant union members).
fn unify(from: PatternTerm, to: PatternTerm, a: &mut Assignment) -> bool {
    match from {
        PatternTerm::Const(_) => to == from,
        PatternTerm::Var(v) => match a.get(&v) {
            Some(&mapped) => mapped == to,
            None => {
                a.insert(v, to);
                true
            }
        },
    }
}

/// Backtracking search for a homomorphism mapping every atom of
/// `container` into some atom of `contained`.
fn embed(container: &StoreCq, contained: &StoreCq, atom_index: usize, a: &mut Assignment) -> bool {
    let Some(atom) = container.patterns.get(atom_index) else {
        // All atoms mapped; the head must map exactly.
        return container.head.iter().zip(&contained.head).all(|(&from, &to)| image(from, a) == to);
    };
    for target in &contained.patterns {
        let snapshot = a.clone();
        if unify(atom.s, target.s, a)
            && unify(atom.p, target.p, a)
            && unify(atom.o, target.o, a)
            && embed(container, contained, atom_index + 1, a)
        {
            return true;
        }
        *a = snapshot;
    }
    false
}

/// True iff `sub ⊑ sup`: every answer of `sub` is an answer of `sup`
/// on every database (plain CQ containment; both heads must have the
/// same arity).
pub fn is_contained(sub: &StoreCq, sup: &StoreCq) -> bool {
    if sub.head.len() != sup.head.len() {
        return false;
    }
    let mut a = Assignment::default();
    embed(sup, sub, 0, &mut a)
}

/// Drop union members contained in another member. The result answers
/// identically on every database (verified by property tests) but can
/// be substantially smaller: exhaustive reformulation keeps, for
/// example, every pure class-instantiation of a class-variable atom,
/// all of which the original member subsumes.
pub fn minimize_ucq(ucq: &StoreUcq) -> StoreUcq {
    let n = ucq.cqs.len();
    let mut keep = vec![true; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[j] {
                continue;
            }
            // Drop j if it is contained in i. Ties (mutually contained,
            // i.e. equivalent members) keep the earlier one.
            if is_contained(&ucq.cqs[j], &ucq.cqs[i]) {
                if is_contained(&ucq.cqs[i], &ucq.cqs[j]) && j < i {
                    continue;
                }
                keep[j] = false;
            }
        }
    }
    let cqs: Vec<StoreCq> =
        ucq.cqs.iter().zip(&keep).filter(|(_, &k)| k).map(|(cq, _)| cq.clone()).collect();
    StoreUcq::new(cqs, ucq.head.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::TermId;
    use jucq_store::StorePattern;

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(TermId::new(TermKind::Uri, i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    fn cq(patterns: Vec<StorePattern>, head: Vec<PatternTerm>) -> StoreCq {
        StoreCq::new(patterns, head)
    }

    #[test]
    fn instantiation_is_contained_in_the_variable_atom() {
        // q_sub(x, Book):- x τ Book  ⊑  q_sup(x, y):- x τ y.
        let sup = cq(vec![StorePattern::new(v(0), c(9), v(1))], vec![v(0), v(1)]);
        let sub = cq(vec![StorePattern::new(v(0), c(9), c(5))], vec![v(0), c(5)]);
        assert!(is_contained(&sub, &sup));
        assert!(!is_contained(&sup, &sub), "the variable atom is strictly larger");
    }

    #[test]
    fn subproperty_member_is_not_contained() {
        // q_sub(x):- x writtenBy y is NOT contained in q_sup(x):- x hasAuthor y
        // (different constants), and vice versa.
        let by = cq(vec![StorePattern::new(v(0), c(1), v(1))], vec![v(0)]);
        let author = cq(vec![StorePattern::new(v(0), c(2), v(1))], vec![v(0)]);
        assert!(!is_contained(&by, &author));
        assert!(!is_contained(&author, &by));
    }

    #[test]
    fn extra_atoms_restrict() {
        // q_sub(x):- (x p y)(x q z)  ⊑  q_sup(x):- (x p y).
        let sup = cq(vec![StorePattern::new(v(0), c(1), v(1))], vec![v(0)]);
        let sub = cq(
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(0), c(2), v(2))],
            vec![v(0)],
        );
        assert!(is_contained(&sub, &sup));
        assert!(!is_contained(&sup, &sub));
    }

    #[test]
    fn head_mismatch_blocks_containment() {
        // Same bodies, different head columns.
        let a = cq(vec![StorePattern::new(v(0), c(1), v(1))], vec![v(0)]);
        let b = cq(vec![StorePattern::new(v(0), c(1), v(1))], vec![v(1)]);
        assert!(!is_contained(&a, &b));
        assert!(!is_contained(&b, &a));
    }

    #[test]
    fn repeated_variables_matter() {
        // q_sub(x):- x p x  ⊑  q_sup(x):- x p y, not conversely.
        let sup = cq(vec![StorePattern::new(v(0), c(1), v(1))], vec![v(0)]);
        let sub = cq(vec![StorePattern::new(v(0), c(1), v(0))], vec![v(0)]);
        assert!(is_contained(&sub, &sup));
        assert!(!is_contained(&sup, &sub));
    }

    #[test]
    fn equivalent_members_collapse_to_one() {
        // Two alpha-equivalent members; minimization keeps exactly one.
        let m1 = cq(vec![StorePattern::new(v(0), c(1), v(5))], vec![v(0)]);
        let m2 = cq(vec![StorePattern::new(v(0), c(1), v(7))], vec![v(0)]);
        let ucq = StoreUcq::new(vec![m1, m2], vec![0]);
        let min = minimize_ucq(&ucq);
        assert_eq!(min.len(), 1);
    }

    #[test]
    fn minimization_drops_subsumed_instantiations() {
        // Union: (x τ y) + the instantiations (x τ C5) and (x τ C6);
        // both instantiations are redundant.
        let general = cq(vec![StorePattern::new(v(0), c(9), v(1))], vec![v(0), v(1)]);
        let inst5 = cq(vec![StorePattern::new(v(0), c(9), c(5))], vec![v(0), c(5)]);
        let inst6 = cq(vec![StorePattern::new(v(0), c(9), c(6))], vec![v(0), c(6)]);
        // And a genuinely new member via a different property.
        let derived = cq(vec![StorePattern::new(v(0), c(3), v(2))], vec![v(0), c(5)]);
        let ucq = StoreUcq::new(vec![general.clone(), inst5, inst6, derived.clone()], vec![0, 1]);
        let min = minimize_ucq(&ucq);
        assert_eq!(min.len(), 2);
        assert_eq!(min.cqs[0], general);
        assert_eq!(min.cqs[1], derived);
    }

    #[test]
    fn join_variable_cannot_be_rebound() {
        // sup(x):- (x p y)(y q z) joins its atoms on y; sub(x):-
        // (x p y)(z q w) does not, so sub ⋢ sup — any homomorphism
        // must map y to both y and z at once. The converse embedding
        // exists (y ↦ y for the p-atom, z ↦ y for the q-atom's
        // subject), so sup ⊑ sub.
        let sup = cq(
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(1), c(2), v(2))],
            vec![v(0)],
        );
        let sub = cq(
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(2), c(2), v(3))],
            vec![v(0)],
        );
        assert!(!is_contained(&sub, &sup), "join on y must block the embedding");
        assert!(is_contained(&sup, &sub));
    }

    #[test]
    fn minimizing_a_singleton_is_identity() {
        let m = cq(vec![StorePattern::new(v(0), c(1), v(1))], vec![v(0)]);
        let ucq = StoreUcq::new(vec![m.clone()], vec![0]);
        assert_eq!(minimize_ucq(&ucq).cqs, vec![m]);
    }
}
