//! Cover-based JUCQ reformulations (Theorem 3.1).
//!
//! Given a cover `C = {f₁,…,fₘ}` of `q`, the JUCQ reformulation is
//! `q_JUCQ(x̄):- q^UCQ_{f₁} ⋈ … ⋈ q^UCQ_{fₘ}`, where each `q^UCQ_{fᵢ}`
//! is the CQ-to-UCQ reformulation of the cover query of `fᵢ`
//! (Definition 3.4). The classical reformulations are the two extreme
//! covers: UCQ = one fragment holding every atom ("pushing the joins
//! below a single union"), SCQ = one singleton fragment per atom
//! ("pushing all unions below the joins", \[13\]).

use jucq_store::StoreJucq;

use crate::bgp::BgpQuery;
use crate::cover::{Cover, CoverError};
use crate::reformulate::{reformulate, ReformulationEnv};

/// The JUCQ reformulation of `q` for `cover` (Theorem 3.1), compiled to
/// the engine IR.
pub fn jucq_for_cover(q: &BgpQuery, cover: &Cover, env: &ReformulationEnv<'_>) -> StoreJucq {
    jucq_obs::span!("reformulation");
    let fragments = cover.cover_queries(q).iter().map(|cq| reformulate(cq, env)).collect();
    StoreJucq::new(fragments, q.head.clone())
}

/// Like [`jucq_for_cover`] but aborting once the total number of union
/// terms exceeds `limit` — `Err(n)` reports a lower bound on the size.
/// Engines reject oversized unions anyway (the paper's stack-depth
/// failures), so callers can fail fast without materializing a
/// six-figure union.
pub fn jucq_for_cover_bounded(
    q: &BgpQuery,
    cover: &Cover,
    env: &ReformulationEnv<'_>,
    limit: usize,
) -> Result<StoreJucq, usize> {
    use crate::reformulate::reformulate_with_limit;
    jucq_obs::span!("reformulation");
    let mut fragments = Vec::with_capacity(cover.len());
    let mut total = 0usize;
    for cq in cover.cover_queries(q) {
        let remaining = limit - total;
        match reformulate_with_limit(&cq, env, remaining) {
            Ok(ucq) => {
                total += ucq.len();
                fragments.push(ucq);
            }
            Err(n) => return Err(total + n),
        }
    }
    Ok(StoreJucq::new(fragments, q.head.clone()))
}

/// The classical UCQ reformulation (single-fragment cover).
pub fn ucq_reformulation(
    q: &BgpQuery,
    env: &ReformulationEnv<'_>,
) -> Result<StoreJucq, CoverError> {
    let cover = Cover::single_fragment(q)?;
    Ok(jucq_for_cover(q, &cover, env))
}

/// The SCQ reformulation of \[13\] (all-singletons cover).
pub fn scq_reformulation(
    q: &BgpQuery,
    env: &ReformulationEnv<'_>,
) -> Result<StoreJucq, CoverError> {
    let cover = Cover::singletons(q)?;
    Ok(jucq_for_cover(q, &cover, env))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::{Graph, Term, TermId, Triple};
    use jucq_store::{PatternTerm, StorePattern, VarId};

    fn c(id: TermId) -> PatternTerm {
        PatternTerm::Const(id)
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    struct Fixture {
        graph: Graph,
        rdf_type: TermId,
    }

    fn fixture() -> Fixture {
        let mut graph = Graph::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        graph.extend(&[
            t("doi1", jucq_model::vocab::RDF_TYPE, Term::uri("Book")),
            t("Book", jucq_model::vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", jucq_model::vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
            t("writtenBy", jucq_model::vocab::RDFS_DOMAIN, Term::uri("Book")),
            t("writtenBy", jucq_model::vocab::RDFS_RANGE, Term::uri("Person")),
        ]);
        let rdf_type = graph.rdf_type();
        Fixture { graph, rdf_type }
    }

    fn uri(f: &Fixture, s: &str) -> TermId {
        f.graph.dict().lookup(&Term::uri(s)).expect("known uri")
    }

    /// Two-atom query: (x τ Publication)(x hasAuthor y).
    fn two_atom_query(f: &Fixture) -> BgpQuery {
        BgpQuery::new(
            vec![0, 1],
            vec![
                StorePattern::new(v(0), c(f.rdf_type), c(uri(f, "Publication"))),
                StorePattern::new(v(0), c(uri(f, "hasAuthor")), v(1)),
            ],
        )
    }

    #[test]
    fn ucq_is_one_fragment_with_product_size() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = two_atom_query(&f);
        let ucq = ucq_reformulation(&q, &env).unwrap();
        assert_eq!(ucq.fragments.len(), 1);
        // 3 reformulations of atom 1 × 2 of atom 2.
        assert_eq!(ucq.union_terms(), 6);
    }

    #[test]
    fn scq_is_one_fragment_per_atom_with_sum_size() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = two_atom_query(&f);
        let scq = scq_reformulation(&q, &env).unwrap();
        assert_eq!(scq.fragments.len(), 2);
        assert_eq!(scq.union_terms(), 5, "3 + 2");
    }

    #[test]
    fn fragment_heads_expose_join_variables() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        let q = two_atom_query(&f);
        let scq = scq_reformulation(&q, &env).unwrap();
        // Fragment of atom 1 exposes x (distinguished + shared).
        assert_eq!(scq.fragments[0].head, vec![0]);
        // Fragment of atom 2 exposes x and y.
        assert_eq!(scq.fragments[1].head, vec![0, 1]);
        assert_eq!(scq.head, vec![0, 1]);
    }

    #[test]
    fn custom_cover_matches_fragment_count() {
        let f = fixture();
        let closure = f.graph.schema_closure();
        let env = ReformulationEnv { closure: &closure, rdf_type: f.rdf_type };
        // Three-atom star query.
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(v(0), c(f.rdf_type), c(uri(&f, "Publication"))),
                StorePattern::new(v(0), c(uri(&f, "hasAuthor")), v(1)),
                StorePattern::new(v(0), c(uri(&f, "writtenBy")), v(2)),
            ],
        );
        let cover = Cover::new(&q, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let jucq = jucq_for_cover(&q, &cover, &env);
        assert_eq!(jucq.fragments.len(), 2);
        // Overlapping fragments both contain atom 1's reformulations.
        assert_eq!(jucq.fragments[0].len(), 6, "{{t0,t1}}: 3 × 2");
        assert_eq!(jucq.fragments[1].len(), 2, "{{t1,t2}}: 2 × 1");
    }
}
