//! BGP query covers (Definition 3.3).
//!
//! A cover of `q(x̄):- t₁,…,tₙ` is a set of fragments (non-empty,
//! possibly overlapping subsets of the atoms) such that:
//!
//! 1. the fragments' union is all of `{t₁,…,tₙ}`;
//! 2. no fragment is included in another;
//! 3. with more than one fragment, every fragment joins (shares a
//!    variable) with at least one other.
//!
//! Following §3 ("In practice, however, we require each fragment to
//! share a variable with another (if any), so that cover queries, hence
//! cover-based reformulations do not feature cartesian products"), we
//! additionally require each fragment's own join graph to be connected.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bgp::BgpQuery;

/// A cover: a set of fragments, each a sorted set of atom indices.
/// Fragments are kept sorted for canonical comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cover {
    fragments: BTreeSet<BTreeSet<usize>>,
}

/// Why a candidate cover is invalid for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// A fragment is empty.
    EmptyFragment,
    /// A fragment references an atom index outside the query.
    AtomOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// The fragments' union misses some atom.
    MissingAtom {
        /// An uncovered atom index.
        index: usize,
    },
    /// One fragment is a subset of another.
    IncludedFragment,
    /// A fragment's internal join graph is disconnected (cartesian
    /// product inside a cover query).
    DisconnectedFragment,
    /// A fragment shares no variable with any other fragment.
    IsolatedFragment,
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::EmptyFragment => write!(f, "empty fragment"),
            CoverError::AtomOutOfRange { index } => write!(f, "atom index {index} out of range"),
            CoverError::MissingAtom { index } => write!(f, "atom {index} not covered"),
            CoverError::IncludedFragment => write!(f, "fragment included in another"),
            CoverError::DisconnectedFragment => write!(f, "fragment join graph disconnected"),
            CoverError::IsolatedFragment => write!(f, "fragment joins no other fragment"),
        }
    }
}

impl std::error::Error for CoverError {}

impl Cover {
    /// Build a cover from fragments, validating Definition 3.3 against
    /// `q` (plus internal fragment connectivity).
    pub fn new(q: &BgpQuery, fragments: Vec<Vec<usize>>) -> Result<Self, CoverError> {
        let n = q.len();
        let mut sets: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for f in fragments {
            if f.is_empty() {
                return Err(CoverError::EmptyFragment);
            }
            if let Some(&bad) = f.iter().find(|&&i| i >= n) {
                return Err(CoverError::AtomOutOfRange { index: bad });
            }
            sets.insert(f.into_iter().collect());
        }
        let cover = Cover { fragments: sets };
        cover.validate(q)?;
        Ok(cover)
    }

    /// The canonical single-fragment cover (the classical UCQ
    /// reformulation shape) — requires a connected query body.
    pub fn single_fragment(q: &BgpQuery) -> Result<Self, CoverError> {
        Cover::new(q, vec![(0..q.len()).collect()])
    }

    /// The all-singletons cover (the SCQ reformulation of \[13\]).
    pub fn singletons(q: &BgpQuery) -> Result<Self, CoverError> {
        Cover::new(q, (0..q.len()).map(|i| vec![i]).collect())
    }

    fn validate(&self, q: &BgpQuery) -> Result<(), CoverError> {
        // Union covers all atoms.
        for i in 0..q.len() {
            if !self.fragments.iter().any(|f| f.contains(&i)) {
                return Err(CoverError::MissingAtom { index: i });
            }
        }
        // No inclusion.
        for a in &self.fragments {
            for b in &self.fragments {
                if a != b && a.is_subset(b) {
                    return Err(CoverError::IncludedFragment);
                }
            }
        }
        // Internal connectivity.
        for f in &self.fragments {
            let idx: Vec<usize> = f.iter().copied().collect();
            if !q.atoms_connected(&idx) {
                return Err(CoverError::DisconnectedFragment);
            }
        }
        // Pairwise join requirement.
        if self.fragments.len() > 1 {
            for f in &self.fragments {
                let f_vars: BTreeSet<_> = f.iter().flat_map(|&i| q.atoms[i].variables()).collect();
                let joins_other = self.fragments.iter().any(|g| {
                    g != f
                        && g.iter()
                            .flat_map(|&i| q.atoms[i].variables())
                            .any(|v| f_vars.contains(&v))
                });
                if !joins_other {
                    return Err(CoverError::IsolatedFragment);
                }
            }
        }
        Ok(())
    }

    /// The fragments, as sorted index vectors.
    pub fn fragments(&self) -> Vec<Vec<usize>> {
        self.fragments.iter().map(|f| f.iter().copied().collect()).collect()
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True iff there are no fragments (only for the empty query).
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The cover queries (Definition 3.4), in fragment order. Each
    /// fragment's head exposes the variables shared with the atoms of
    /// the *other fragments* — including overlap atoms, which belong to
    /// both sides (the subtlety that makes overlapping covers sound).
    pub fn cover_queries(&self, q: &BgpQuery) -> Vec<BgpQuery> {
        let frags = self.fragments();
        frags
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut others: Vec<usize> = frags
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, g)| g.iter().copied())
                    .collect();
                others.sort_unstable();
                others.dedup();
                q.cover_query_in(f, &others)
            })
            .collect()
    }

    /// The GCov move: add atom `atom` to fragment `frag_index`, dropping
    /// fragments that became *included* in another (restoring
    /// Definition 3.3). Returns `None` if the move is a no-op or yields
    /// an invalid cover. Coverage-redundancy pruning (the paper's
    /// cost-ordered removal) is a separate step:
    /// [`Cover::prune_redundant_by`].
    pub fn add_atom(&self, q: &BgpQuery, frag_index: usize, atom: usize) -> Option<Cover> {
        let mut frags = self.fragments();
        let target = frags.get_mut(frag_index)?;
        if target.contains(&atom) {
            return None;
        }
        target.push(atom);
        target.sort_unstable();
        // Drop fragments included in another (keeping one copy of
        // duplicates).
        let mut kept: Vec<Vec<usize>> = Vec::with_capacity(frags.len());
        for (i, f) in frags.iter().enumerate() {
            let fset: BTreeSet<usize> = f.iter().copied().collect();
            let redundant = frags.iter().enumerate().any(|(j, g)| {
                if i == j {
                    return false;
                }
                let gset: BTreeSet<usize> = g.iter().copied().collect();
                fset.is_subset(&gset) && (fset != gset || i > j)
            });
            if !redundant {
                kept.push(f.clone());
            }
        }
        let candidate = Cover::new(q, kept).ok()?;
        if candidate == *self {
            None
        } else {
            Some(candidate)
        }
    }

    /// The paper's redundancy pruning (§4.3): "all the fragments of a
    /// cover are kept sorted in the decreasing order of their cost ...
    /// when a fragment is found redundant (with respect to the other
    /// fragments in the cover), the fragment is removed". A fragment is
    /// coverage-redundant when the remaining fragments still form a
    /// valid cover of `q`; `cost` orders which redundant fragment to
    /// drop first (costliest first).
    pub fn prune_redundant_by(&self, q: &BgpQuery, mut cost: impl FnMut(&[usize]) -> f64) -> Cover {
        let mut frags = self.fragments();
        loop {
            if frags.len() <= 1 {
                break;
            }
            // Costliest-first inspection order.
            let mut order: Vec<usize> = (0..frags.len()).collect();
            order.sort_by(|&a, &b| {
                cost(&frags[b]).partial_cmp(&cost(&frags[a])).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut removed = false;
            for idx in order {
                let rest: Vec<Vec<usize>> = frags
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != idx)
                    .map(|(_, f)| f.clone())
                    .collect();
                if Cover::new(q, rest).is_ok() {
                    frags.remove(idx);
                    removed = true;
                    break;
                }
            }
            if !removed {
                break;
            }
        }
        Cover::new(q, frags).expect("pruning preserves validity")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .fragments
            .iter()
            .map(|frag| {
                let ts: Vec<String> = frag.iter().map(|i| format!("t{}", i + 1)).collect();
                format!("{{{}}}", ts.join(","))
            })
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::TermId;
    use jucq_store::{PatternTerm, StorePattern, VarId};

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(TermId::new(TermKind::Uri, i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// q1 shape: three atoms all sharing x.
    fn q1() -> BgpQuery {
        BgpQuery::new(
            vec![0, 1],
            vec![
                StorePattern::new(v(0), c(100), v(1)),
                StorePattern::new(v(0), c(101), c(200)),
                StorePattern::new(v(0), c(102), c(201)),
            ],
        )
    }

    #[test]
    fn paper_example_cover_is_valid() {
        // {{t1,t2},{t2,t3}} — the paper's example cover of q1.
        let cover = Cover::new(&q1(), vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.to_string(), "{{t1,t2}, {t2,t3}}");
    }

    #[test]
    fn single_and_singleton_covers() {
        let q = q1();
        assert_eq!(Cover::single_fragment(&q).unwrap().len(), 1);
        assert_eq!(Cover::singletons(&q).unwrap().len(), 3);
    }

    #[test]
    fn missing_atom_rejected() {
        assert_eq!(
            Cover::new(&q1(), vec![vec![0], vec![1]]),
            Err(CoverError::MissingAtom { index: 2 })
        );
    }

    #[test]
    fn included_fragment_rejected() {
        assert_eq!(
            Cover::new(&q1(), vec![vec![0, 1, 2], vec![1]]),
            Err(CoverError::IncludedFragment)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            Cover::new(&q1(), vec![vec![0, 1, 2, 7]]),
            Err(CoverError::AtomOutOfRange { index: 7 })
        );
    }

    #[test]
    fn empty_fragment_rejected() {
        assert_eq!(Cover::new(&q1(), vec![vec![], vec![0, 1, 2]]), Err(CoverError::EmptyFragment));
    }

    #[test]
    fn disconnected_fragment_rejected() {
        // (x p y)(z p w)(x p z): atoms 0 and 1 share nothing.
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(v(0), c(1), v(1)),
                StorePattern::new(v(2), c(1), v(3)),
                StorePattern::new(v(0), c(1), v(2)),
            ],
        );
        assert_eq!(
            Cover::new(&q, vec![vec![0, 1], vec![2]]),
            Err(CoverError::DisconnectedFragment)
        );
        assert!(Cover::new(&q, vec![vec![0, 2], vec![1, 2]]).is_ok());
    }

    #[test]
    fn isolated_fragment_rejected() {
        // Two disconnected components: {t0}, {t1} cannot form a
        // multi-fragment cover.
        let q = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(2), c(1), v(3))],
        );
        assert_eq!(Cover::new(&q, vec![vec![0], vec![1]]), Err(CoverError::IsolatedFragment));
    }

    #[test]
    fn cover_queries_follow_definition() {
        let q = q1();
        let cover = Cover::new(&q, vec![vec![0], vec![1, 2]]).unwrap();
        let cqs = cover.cover_queries(&q);
        assert_eq!(cqs.len(), 2);
        // Fragment {t1}: head (x, y); fragment {t2,t3}: head (x).
        assert_eq!(cqs[0].head, vec![0, 1]);
        assert_eq!(cqs[1].head, vec![0]);
    }

    #[test]
    fn gcov_move_adds_and_prunes() {
        // Paper §4.3's example: {{t1,t2},{t1,t3},{t3,t4}} + (f0 ← t4)
        // ⇒ after coverage pruning: {{t1,t2,t4},{t1,t3}} (in a 4-atom
        // star query where all atoms share a variable).
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(v(0), c(1), v(1)),
                StorePattern::new(v(0), c(2), v(2)),
                StorePattern::new(v(0), c(3), v(3)),
                StorePattern::new(v(0), c(4), v(4)),
            ],
        );
        let cover = Cover::new(&q, vec![vec![0, 1], vec![0, 2], vec![2, 3]]).unwrap();
        let pos = cover.fragments().iter().position(|f| f == &vec![0, 1]).unwrap();
        let moved = cover.add_atom(&q, pos, 3).unwrap();
        assert_eq!(
            moved.fragments(),
            vec![vec![0, 1, 3], vec![0, 2], vec![2, 3]],
            "inclusion pruning alone keeps {{t3,t4}}"
        );
        // {t3,t4} is the costliest fragment here; coverage pruning
        // removes it.
        let pruned = moved.prune_redundant_by(&q, |f| if f == [2, 3] { 10.0 } else { 1.0 });
        assert_eq!(pruned.fragments(), vec![vec![0, 1, 3], vec![0, 2]]);
    }

    #[test]
    fn prune_keeps_necessary_fragments() {
        let q = q1();
        let cover = Cover::new(&q, vec![vec![0, 1], vec![1, 2]]).unwrap();
        // Neither fragment is coverage-redundant: removing either loses
        // an atom.
        let pruned = cover.prune_redundant_by(&q, |_| 1.0);
        assert_eq!(pruned, cover);
    }

    #[test]
    fn gcov_move_noop_returns_none() {
        let q = q1();
        let cover = Cover::single_fragment(&q).unwrap();
        assert!(cover.add_atom(&q, 0, 0).is_none(), "atom already present");
    }
}
