//! # jucq-reformulation — reasoning on RDF graphs and queries
//!
//! The two reasoning steps of Section 2 of *Optimizing
//! Reformulation-based Query Answering in RDF*:
//!
//! * [`saturation`] — forward chaining: compute the closure `G∞` of an
//!   RDF graph under the RDFS entailment rules of the DB fragment, so
//!   that plain evaluation over the saturation yields complete answers
//!   (`q(db∞) = q(saturate(db))`);
//! * [`mod@reformulate`] — backward chaining: turn a BGP conjunctive query
//!   into the equivalent union of conjunctive queries (UCQ) whose plain
//!   evaluation over the *non-saturated* graph yields the same complete
//!   answers (`q(db∞) = q_ref(db)`).
//!
//! On top of those, the paper's Section 3 machinery:
//!
//! * [`bgp`] — BGP (SPARQL conjunctive) queries;
//! * [`cover`] — query covers (Definition 3.3) and cover queries
//!   (Definition 3.4);
//! * [`jucq`] — cover-based JUCQ reformulations (Theorem 3.1), plus the
//!   fixed UCQ and SCQ reformulations of prior work as special cases.

#![warn(missing_docs)]

pub mod bgp;
pub mod containment;
pub mod cover;
pub mod incremental;
pub mod jucq;
pub mod reformulate;
pub mod saturation;

pub use bgp::BgpQuery;
pub use containment::{is_contained, minimize_ucq};
pub use cover::{Cover, CoverError};
pub use incremental::IncrementalSaturation;
pub use jucq::{jucq_for_cover, scq_reformulation, ucq_reformulation};
pub use reformulate::{reformulate, ReformulationEnv};
pub use saturation::saturate;
