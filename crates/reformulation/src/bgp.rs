//! BGP (SPARQL conjunctive) queries.
//!
//! A BGP query `q(x̄):- t₁, …, tₙ` (paper §2.2) is a set of triple
//! patterns plus distinguished (head) variables. We reuse the store IR's
//! [`StorePattern`] for atoms — a pattern over dictionary-encoded
//! constants and dense variables — so queries flow to reformulation and
//! evaluation without re-encoding. Per the paper, blank nodes in queries
//! behave exactly like non-distinguished variables and are assumed
//! replaced by them upstream.

use jucq_store::{PatternTerm, StoreCq, StorePattern, VarId};
use serde::{Deserialize, Serialize};

/// A BGP query: distinguished variables + triple-pattern body, with an
/// optional answer limit (SPARQL `LIMIT`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BgpQuery {
    /// The distinguished (answer) variables `x̄`.
    pub head: Vec<VarId>,
    /// The body triple patterns `t₁, …, tₙ`.
    pub atoms: Vec<StorePattern>,
    /// Keep at most this many answers (applied after deduplication).
    pub limit: Option<usize>,
}

impl BgpQuery {
    /// Build a query.
    ///
    /// # Panics
    /// Panics if a head variable does not occur in the body.
    pub fn new(head: Vec<VarId>, atoms: Vec<StorePattern>) -> Self {
        let q = BgpQuery { head, atoms, limit: None };
        for v in &q.head {
            assert!(
                q.variables().contains(v),
                "distinguished variable ?{v} must occur in the body"
            );
        }
        q
    }

    /// Attach an answer limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// All distinct variables of the body, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The largest variable id used (fresh variables allocate above it).
    pub fn max_var(&self) -> Option<VarId> {
        self.variables().into_iter().max()
    }

    /// Number of body atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True iff the body is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True iff atoms `i` and `j` share a variable (join).
    pub fn atoms_join(&self, i: usize, j: usize) -> bool {
        let vi = self.atoms[i].variables();
        self.atoms[j].variables().iter().any(|v| vi.contains(v))
    }

    /// True iff the set of atoms `set` forms a connected join graph
    /// (no cartesian product inside a fragment). Singletons and the
    /// empty set are connected.
    pub fn atoms_connected(&self, set: &[usize]) -> bool {
        if set.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; set.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for j in 0..set.len() {
                if !seen[j] && self.atoms_join(set[i], set[j]) {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == set.len()
    }

    /// View the query as a store CQ (all-variable head).
    pub fn to_store_cq(&self) -> StoreCq {
        StoreCq::new(self.atoms.clone(), self.head.iter().map(|&v| PatternTerm::Var(v)).collect())
    }

    /// A canonical form for caching and workload deduplication:
    /// variables renamed (head variables to `0..k` in head order, body
    /// variables by first occurrence) and atoms sorted; two isomorphic
    /// queries — equal up to variable names and atom order — share one
    /// canonical form. Returns the canonical query together with the
    /// permutation `perm` such that canonical atom `i` is the original
    /// atom `perm[i]` (so cached atom-index structures like covers can
    /// be translated back).
    pub fn canonicalize(&self) -> (BgpQuery, Vec<usize>) {
        use jucq_model::FxHashMap;
        // Head variables first, in head order.
        let mut rename: FxHashMap<VarId, VarId> = FxHashMap::default();
        for &v in &self.head {
            let next = rename.len() as VarId;
            rename.entry(v).or_insert(next);
        }
        let head_count = rename.len() as VarId;

        // Phase 1: sort atoms by a key blind to body-variable identity.
        let key1 = |t: &PatternTerm, rename: &FxHashMap<VarId, VarId>| -> (u8, u32) {
            match t {
                PatternTerm::Const(c) => (0, c.raw()),
                PatternTerm::Var(v) => match rename.get(v) {
                    Some(&r) if r < head_count => (1, u32::from(r)),
                    _ => (2, 0),
                },
            }
        };
        let mut order: Vec<usize> = (0..self.atoms.len()).collect();
        order.sort_by_key(|&i| {
            let a = &self.atoms[i];
            [key1(&a.s, &rename), key1(&a.p, &rename), key1(&a.o, &rename)]
        });

        // Phase 2: rename body variables by first occurrence in that
        // order, then apply.
        let mut next = head_count;
        for &i in &order {
            for v in self.atoms[i].variables() {
                rename.entry(v).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
            }
        }
        let map_term = |t: PatternTerm| -> PatternTerm {
            match t {
                PatternTerm::Var(v) => PatternTerm::Var(rename[&v]),
                c => c,
            }
        };
        let mut renamed: Vec<(StorePattern, usize)> = order
            .iter()
            .map(|&i| {
                let a = &self.atoms[i];
                (StorePattern::new(map_term(a.s), map_term(a.p), map_term(a.o)), i)
            })
            .collect();
        // Phase 3: final total order on the renamed atoms.
        renamed.sort_by_key(|(a, _)| *a);

        let head: Vec<VarId> = self.head.iter().map(|v| rename[v]).collect();
        let atoms: Vec<StorePattern> = renamed.iter().map(|(a, _)| *a).collect();
        let perm: Vec<usize> = renamed.iter().map(|(_, i)| *i).collect();
        let canonical = BgpQuery { head, atoms, limit: self.limit };
        (canonical, perm)
    }

    /// The subquery restricted to the given atom indices, with the head
    /// computed per Definition 3.4 against an explicit set of atoms
    /// belonging to *other fragments*: the distinguished variables of
    /// the query occurring in the fragment, plus the fragment's
    /// variables appearing in any of `other_atoms` (the join
    /// variables). With overlapping covers, a shared atom belongs to
    /// another fragment too, so its variables join — which is why the
    /// context is the other fragments' atom set, not merely the
    /// complement of `fragment`.
    pub fn cover_query_in(&self, fragment: &[usize], other_atoms: &[usize]) -> BgpQuery {
        let atoms: Vec<StorePattern> = fragment.iter().map(|&i| self.atoms[i]).collect();
        let frag_vars: Vec<VarId> = {
            let mut out = Vec::new();
            for a in &atoms {
                for v in a.variables() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out
        };
        let other_vars: Vec<VarId> = {
            let mut out = Vec::new();
            for &i in other_atoms {
                for v in self.atoms[i].variables() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out
        };
        let head: Vec<VarId> = frag_vars
            .into_iter()
            .filter(|v| self.head.contains(v) || other_vars.contains(v))
            .collect();
        // Cover queries never carry the limit: fragments must produce
        // complete intermediate results for Theorem 3.1 to hold.
        BgpQuery { head, atoms, limit: None }
    }

    /// [`BgpQuery::cover_query_in`] with the other-fragment context
    /// defaulting to the fragment's complement — exact for
    /// non-overlapping covers; overlapping covers must supply the real
    /// context (see [`crate::Cover::cover_queries`]).
    pub fn cover_query(&self, fragment: &[usize]) -> BgpQuery {
        let complement: Vec<usize> =
            (0..self.atoms.len()).filter(|i| !fragment.contains(i)).collect();
        self.cover_query_in(fragment, &complement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::TermId;

    fn c(i: u32) -> PatternTerm {
        PatternTerm::Const(TermId::new(TermKind::Uri, i))
    }

    fn v(i: VarId) -> PatternTerm {
        PatternTerm::Var(i)
    }

    /// The paper's q1 shape: (x type y)(x degreeFrom U)(x memberOf D).
    fn q1() -> BgpQuery {
        BgpQuery::new(
            vec![0, 1],
            vec![
                StorePattern::new(v(0), c(100), v(1)),
                StorePattern::new(v(0), c(101), c(200)),
                StorePattern::new(v(0), c(102), c(201)),
            ],
        )
    }

    #[test]
    fn variables_in_order() {
        assert_eq!(q1().variables(), vec![0, 1]);
        assert_eq!(q1().max_var(), Some(1));
    }

    #[test]
    #[should_panic(expected = "must occur in the body")]
    fn unsafe_head_rejected() {
        BgpQuery::new(vec![9], vec![StorePattern::new(v(0), c(1), v(1))]);
    }

    #[test]
    fn atom_join_graph() {
        let q = q1();
        assert!(q.atoms_join(0, 1));
        assert!(q.atoms_join(1, 2));
        assert!(q.atoms_connected(&[0, 1, 2]));
        assert!(q.atoms_connected(&[0]));
        assert!(q.atoms_connected(&[]));
    }

    #[test]
    fn disconnected_sets_detected() {
        // (x p y)(z p w): no shared variables.
        let q = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(2), c(1), v(3))],
        );
        assert!(!q.atoms_connected(&[0, 1]));
    }

    #[test]
    fn cover_query_head_follows_definition_3_4() {
        // The paper's example: cover {{t1},{t2,t3}} of q1 gives
        // q_f1(x, y) and q_f2(x).
        let q = q1();
        let f1 = q.cover_query(&[0]);
        assert_eq!(f1.head, vec![0, 1], "distinguished x, y plus join var x");
        let f2 = q.cover_query(&[1, 2]);
        assert_eq!(f2.head, vec![0], "x distinguished and shared; no other var");
        assert_eq!(f2.atoms.len(), 2);
    }

    #[test]
    fn cover_query_includes_pure_join_variables() {
        // q(x):- (x p y)(y p z): cover {{0},{1}} must expose y on both
        // sides even though y is not distinguished.
        let q = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(1), c(1), v(2))],
        );
        let f1 = q.cover_query(&[0]);
        assert_eq!(f1.head, vec![0, 1]);
        let f2 = q.cover_query(&[1]);
        assert_eq!(f2.head, vec![1], "join var y only; z stays existential");
    }

    #[test]
    fn canonical_forms_of_isomorphic_queries_agree() {
        // Same query with different variable ids and atom order.
        let a = BgpQuery::new(
            vec![3],
            vec![StorePattern::new(v(3), c(1), v(9)), StorePattern::new(v(9), c(2), v(4))],
        );
        let b = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(v(7), c(2), v(2)), StorePattern::new(v(0), c(1), v(7))],
        );
        let (ca, perm_a) = a.canonicalize();
        let (cb, perm_b) = b.canonicalize();
        assert_eq!(ca, cb);
        // Permutations map canonical atoms back to the originals.
        assert_eq!(perm_a.len(), 2);
        for (i, &orig) in perm_a.iter().enumerate() {
            assert_eq!(ca.atoms[i].p, a.atoms[orig].p);
        }
        for (i, &orig) in perm_b.iter().enumerate() {
            assert_eq!(cb.atoms[i].p, b.atoms[orig].p);
        }
    }

    #[test]
    fn canonical_form_distinguishes_structure() {
        // (x p y)(y p z) vs (x p y)(x p z): different join shapes.
        let chain = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(1), c(1), v(2))],
        );
        let star = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(v(0), c(1), v(1)), StorePattern::new(v(0), c(1), v(2))],
        );
        assert_ne!(chain.canonicalize().0, star.canonicalize().0);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let q = q1();
        let (c1, _) = q.canonicalize();
        let (c2, _) = c1.canonicalize();
        assert_eq!(c1, c2);
    }

    #[test]
    fn canonical_head_order_is_preserved() {
        // Head (b, a): canonical head must stay two distinct columns in
        // the same semantic order.
        let q = BgpQuery::new(vec![5, 2], vec![StorePattern::new(v(2), c(1), v(5))]);
        let (c, _) = q.canonicalize();
        assert_eq!(c.head, vec![0, 1]);
        // Var 5 (first in head) is the object of the atom.
        assert_eq!(c.atoms[0].o, PatternTerm::Var(0));
        assert_eq!(c.atoms[0].s, PatternTerm::Var(1));
    }

    #[test]
    fn to_store_cq_round_trip() {
        let q = q1();
        let cq = q.to_store_cq();
        assert_eq!(cq.patterns, q.atoms);
        assert_eq!(cq.head_vars(), q.head);
    }
}
