//! The DBLP-like data generator.
//!
//! Produces a bibliography graph with the statistical shape of the DBLP
//! RDF export: publications typed with their most specific class,
//! heavy-tailed authorship (a few prolific authors, a long tail of
//! occasional ones), venue collections (`publishedInJournal` /
//! `inProceedings` — both `⊑ partOf`), publication years as literals,
//! and a citation graph.

use jucq_model::{Graph, Term, TermId, TripleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::ontology::{Ontology, NS};

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DblpConfig {
    /// Number of authors (publications scale at ≈4× this).
    pub authors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DblpConfig {
    /// A scale of `authors` with the default seed.
    pub fn new(authors: usize) -> Self {
        DblpConfig { authors, seed: 0xdb19 }
    }

    /// Approximate a configuration for at least `target` data triples
    /// (one author yields roughly 32 triples).
    pub fn for_triples(target: usize) -> Self {
        Self::new(target.div_ceil(32).max(10))
    }
}

struct V {
    rdf_type: TermId,
    journal_article: TermId,
    magazine_article: TermId,
    in_proceedings: TermId,
    in_collection: TermId,
    book: TermId,
    phd_thesis: TermId,
    masters_thesis: TermId,
    web_document: TermId,
    journal: TermId,
    proceedings: TermId,
    series: TermId,
    author_class: TermId,
    editor_class: TermId,
    author: TermId,
    editor: TermId,
    published_in_journal: TermId,
    in_proceedings_prop: TermId,
    in_series: TermId,
    cites: TermId,
    year: TermId,
    title: TermId,
    person_name: TermId,
}

impl V {
    fn intern(graph: &mut Graph) -> V {
        let mut u = |n: &str| graph.dict_mut().encode_uri(&format!("{NS}{n}"));
        V {
            journal_article: u("JournalArticle"),
            magazine_article: u("MagazineArticle"),
            in_proceedings: u("InProceedings"),
            in_collection: u("InCollection"),
            book: u("Book"),
            phd_thesis: u("PhdThesis"),
            masters_thesis: u("MastersThesis"),
            web_document: u("WebDocument"),
            journal: u("Journal"),
            proceedings: u("Proceedings"),
            series: u("Series"),
            author_class: u("Author"),
            editor_class: u("Editor"),
            author: u("author"),
            editor: u("editor"),
            published_in_journal: u("publishedInJournal"),
            in_proceedings_prop: u("inProceedings"),
            in_series: u("inSeries"),
            cites: u("cites"),
            year: u("year"),
            title: u("title"),
            person_name: u("personName"),
            rdf_type: graph.rdf_type(),
        }
    }
}

/// The URI of author `i`.
pub fn author_uri(i: usize) -> String {
    format!("http://dblp.jucq.org/person/a{i}")
}

/// The URI of journal `i`.
pub fn journal_uri(i: usize) -> String {
    format!("http://dblp.jucq.org/journal/j{i}")
}

/// The URI of proceedings `i`.
pub fn proceedings_uri(i: usize) -> String {
    format!("http://dblp.jucq.org/proc/p{i}")
}

/// Generate a DBLP-like graph (ontology + data) for `config`.
pub fn generate(config: &DblpConfig) -> Graph {
    assert!(config.authors >= 10, "at least ten authors");
    let mut graph = Graph::new();
    Ontology::declare(&mut graph);
    let v = V::intern(&mut graph);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let add = |graph: &mut Graph, s: TermId, p: TermId, o: TermId| {
        graph.insert_data_encoded(TripleId::new(s, p, o));
    };

    // People. Heavy-tailed prolificness: author i gets a weight
    // proportional to 1/(1+rank)^0.8.
    let mut people: Vec<TermId> = Vec::with_capacity(config.authors);
    for i in 0..config.authors {
        let person = graph.dict_mut().encode_uri(&author_uri(i));
        let name = graph.dict_mut().encode(&Term::literal(format!("Author {i}")));
        add(&mut graph, person, v.person_name, name);
        people.push(person);
    }
    // Note: Author/Editor types are *implicit* via the ranges of
    // `author`/`editor` — matching DBLP, where person typing is sparse.
    // A small fraction get explicit types.
    for (i, &p) in people.iter().enumerate() {
        if i % 20 == 0 {
            add(&mut graph, p, v.rdf_type, v.author_class);
        }
    }

    // Venues.
    let n_journals = (config.authors / 50).max(3);
    let mut journals = Vec::with_capacity(n_journals);
    for i in 0..n_journals {
        let j = graph.dict_mut().encode_uri(&journal_uri(i));
        add(&mut graph, j, v.rdf_type, v.journal);
        journals.push(j);
    }
    let n_procs = (config.authors / 20).max(3);
    let mut procs = Vec::with_capacity(n_procs);
    for i in 0..n_procs {
        let p = graph.dict_mut().encode_uri(&proceedings_uri(i));
        add(&mut graph, p, v.rdf_type, v.proceedings);
        procs.push(p);
        // Proceedings have editors.
        for _ in 0..rng.gen_range(1..=3) {
            let e = people[rng.gen_range(0..people.len())];
            add(&mut graph, p, v.editor, e);
            if rng.gen_bool(0.2) {
                add(&mut graph, e, v.rdf_type, v.editor_class);
            }
        }
    }
    let n_series = (n_procs / 10).max(1);
    let mut series = Vec::with_capacity(n_series);
    for i in 0..n_series {
        let s = graph.dict_mut().encode_uri(&format!("http://dblp.jucq.org/series/s{i}"));
        add(&mut graph, s, v.rdf_type, v.series);
        series.push(s);
    }

    // Publications.
    let n_pubs = config.authors * 4;
    let mut pubs: Vec<TermId> = Vec::with_capacity(n_pubs);
    for i in 0..n_pubs {
        let publication = graph.dict_mut().encode_uri(&format!("http://dblp.jucq.org/pub/pub{i}"));
        let class = match rng.gen_range(0..100) {
            0..=44 => v.in_proceedings,
            45..=74 => v.journal_article,
            75..=79 => v.magazine_article,
            80..=84 => v.in_collection,
            85..=87 => v.book,
            88..=90 => v.phd_thesis,
            91..=92 => v.masters_thesis,
            _ => v.web_document,
        };
        add(&mut graph, publication, v.rdf_type, class);
        // Venue linkage through the partOf hierarchy.
        if class == v.journal_article || class == v.magazine_article {
            let j = journals[rng.gen_range(0..journals.len())];
            add(&mut graph, publication, v.published_in_journal, j);
        } else if class == v.in_proceedings {
            let p = procs[rng.gen_range(0..procs.len())];
            add(&mut graph, publication, v.in_proceedings_prop, p);
        } else if class == v.book && rng.gen_bool(0.5) {
            let s = series[rng.gen_range(0..series.len())];
            add(&mut graph, publication, v.in_series, s);
        }
        // Authors: 1–5, biased toward the low ranks (prolific heads).
        let n_authors = rng.gen_range(1..=5usize);
        for _ in 0..n_authors {
            let r: f64 = rng.gen::<f64>();
            let idx = ((r * r) * people.len() as f64) as usize;
            let a = people[idx.min(people.len() - 1)];
            add(&mut graph, publication, v.author, a);
        }
        // Year and title.
        let year =
            graph.dict_mut().encode(&Term::literal(format!("{}", 1970 + rng.gen_range(0..45))));
        add(&mut graph, publication, v.year, year);
        let title = graph.dict_mut().encode(&Term::literal(format!("Title of pub{i}")));
        add(&mut graph, publication, v.title, title);
        // Citations to earlier publications.
        if !pubs.is_empty() {
            for _ in 0..rng.gen_range(0..=3usize) {
                let cited = pubs[rng.gen_range(0..pubs.len())];
                add(&mut graph, publication, v.cites, cited);
            }
        }
        pubs.push(publication);
    }

    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&DblpConfig::new(100));
        let b = generate(&DblpConfig::new(100));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn triple_count_scales_with_authors() {
        let g = generate(&DblpConfig::new(200));
        // ~32 triples per author.
        assert!((3_000..=15_000).contains(&g.len()), "got {}", g.len());
    }

    #[test]
    fn heavy_tail_authorship() {
        let mut g = generate(&DblpConfig::new(300));
        let author = g.dict().lookup(&Term::uri(Ontology::uri("author"))).unwrap();
        let mut counts: std::collections::HashMap<TermId, usize> = std::collections::HashMap::new();
        for t in g.data() {
            if t.p == author {
                *counts.entry(t.o).or_default() += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        let mean = counts.values().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max as f64 > 3.0 * mean, "head {max} vs mean {mean:.1}");
        let _ = g.rdf_type();
    }

    #[test]
    fn venue_links_respect_publication_type() {
        let mut g = generate(&DblpConfig::new(200));
        let ty = g.rdf_type();
        let d = g.dict();
        let in_proc = d.lookup(&Term::uri(Ontology::uri("inProceedings"))).unwrap();
        let journal_article = d.lookup(&Term::uri(Ontology::uri("JournalArticle"))).unwrap();
        // No journal article uses inProceedings.
        let ja: std::collections::HashSet<TermId> =
            g.data().iter().filter(|t| t.p == ty && t.o == journal_article).map(|t| t.s).collect();
        assert!(!ja.is_empty());
        for t in g.data() {
            if t.p == in_proc {
                assert!(!ja.contains(&t.s));
            }
        }
    }

    #[test]
    fn years_are_literals() {
        let g = generate(&DblpConfig::new(50));
        let year = g.dict().lookup(&Term::uri(Ontology::uri("year"))).unwrap();
        for t in g.data() {
            if t.p == year {
                assert!(t.o.is_literal());
            }
        }
    }
}
