//! The DBLP-like benchmark: ontology, generator, query workload.

pub mod generator;
pub mod ontology;
pub mod queries;

pub use generator::{generate, DblpConfig};
pub use ontology::{Ontology, NS};
pub use queries::workload;
