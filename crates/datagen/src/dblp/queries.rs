//! The 10-query DBLP workload.
//!
//! Reconstructed to span the paper's Table 4 characteristics for DBLP:
//! 1–10 atoms, reformulation sizes from 1 to hundreds of thousands
//! (Q10 is the paper's "huge UCQ reformulation on which ECov's
//! exhaustive search is unfeasible").

use super::ontology::NS;
use crate::NamedQuery;

fn prefixed(body: &str) -> String {
    format!("PREFIX db: <{NS}>\n{body}")
}

/// The DBLP workload Q01–Q10.
pub fn workload() -> Vec<NamedQuery> {
    let q = |name: &str, body: &str| NamedQuery::new(name, prefixed(body));
    vec![
        // Q01: leaf class.
        q("Q01", "SELECT ?x WHERE { ?x a db:JournalArticle }"),
        // Q02: Publication — the big class with 10 subclasses and the
        // partOf/cites domains.
        q("Q02", "SELECT ?x WHERE { ?x a db:Publication }"),
        // Q03: creator hierarchy (author/editor).
        q("Q03", "SELECT ?d ?p WHERE { ?d db:creator ?p }"),
        // Q04: Person via creator ranges.
        q("Q04", "SELECT ?p WHERE { ?p a db:Person }"),
        // Q05: partOf hierarchy × Article subtree.
        q("Q05", "SELECT ?x ?v WHERE { ?x db:partOf ?v . ?x a db:Article }"),
        // Q06: co-authorship, no reformulation on the join atom.
        q(
            "Q06",
            "SELECT ?a ?b WHERE { ?x db:author ?a . ?x db:author ?b . ?x a db:InProceedings }",
        ),
        // Q07: citation chain with Publication endpoints.
        q("Q07", "SELECT ?x ?y WHERE { ?x db:cites ?y . ?y a db:Book . ?x a db:JournalArticle }"),
        // Q08: five atoms mixing creator and partOf hierarchies.
        q(
            "Q08",
            "SELECT ?a WHERE { ?x db:creator ?a . ?x db:partOf ?v . ?v a db:Collection . \
             ?x db:year ?y . ?x db:cites ?z }",
        ),
        // Q09: class variable over cited documents (large union).
        q("Q09", "SELECT ?x ?t WHERE { ?x a ?t . ?x db:cites ?y . ?y a db:PhdThesis }"),
        // Q10: ten atoms, two class variables — the workload's monster:
        // a huge UCQ reformulation and a cover space too large for
        // exhaustive search (the paper's ECov misses Q10).
        q(
            "Q10",
            "SELECT ?x ?y ?tx ?ty WHERE { ?x a ?tx . ?y a ?ty . ?x db:cites ?y . \
             ?x db:creator ?a . ?y db:creator ?a . ?x db:partOf ?v . ?y db:partOf ?w . \
             ?x db:year ?yr . ?y db:year ?yr2 . ?a db:personName ?n }",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_queries() {
        let w = workload();
        assert_eq!(w.len(), 10);
        let mut names: Vec<&str> = w.iter().map(|q| q.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn q10_has_ten_atoms() {
        let q10 = &workload()[9];
        assert_eq!(q10.sparql.split('{').nth(1).unwrap().matches(" . ").count() + 1, 10);
    }
}
