//! The bibliography-style (DBLP-like) RDFS ontology.
//!
//! Shaped after the RDF export of DBLP \[29\] used by the paper: a
//! document/publication hierarchy, venue collections, and
//! Dublin-Core-ish creator/part-of property hierarchies. Literal-valued
//! properties (`title`, `year`, `pages`, `personName`) carry no class
//! constraints.

use jucq_model::{vocab, Graph, Term, Triple};

/// The ontology namespace.
pub const NS: &str = "http://jucq.example.org/dblp#";

/// `(class, superclass)` pairs.
pub const SUBCLASSES: &[(&str, &str)] = &[
    ("Publication", "Document"),
    ("Collection", "Document"),
    ("Article", "Publication"),
    ("InProceedings", "Publication"),
    ("InCollection", "Publication"),
    ("Book", "Publication"),
    ("PhdThesis", "Publication"),
    ("MastersThesis", "Publication"),
    ("WebDocument", "Publication"),
    ("JournalArticle", "Article"),
    ("MagazineArticle", "Article"),
    ("Journal", "Collection"),
    ("Proceedings", "Collection"),
    ("Series", "Collection"),
    ("Magazine", "Collection"),
    ("Person", "Agent"),
    ("Author", "Person"),
    ("Editor", "Person"),
];

/// `(property, superproperty)` pairs.
pub const SUBPROPERTIES: &[(&str, &str)] = &[
    ("author", "creator"),
    ("editor", "creator"),
    ("publishedInJournal", "partOf"),
    ("inProceedings", "partOf"),
    ("inSeries", "partOf"),
];

/// `(property, domain class)` pairs.
pub const DOMAINS: &[(&str, &str)] =
    &[("creator", "Document"), ("partOf", "Publication"), ("cites", "Publication")];

/// `(property, range class)` pairs.
pub const RANGES: &[(&str, &str)] = &[
    ("creator", "Person"),
    ("author", "Author"),
    ("editor", "Editor"),
    ("partOf", "Collection"),
    ("publishedInJournal", "Journal"),
    ("inProceedings", "Proceedings"),
    ("inSeries", "Series"),
    ("cites", "Publication"),
];

/// Handle on the ontology vocabulary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ontology;

impl Ontology {
    /// The full URI of an ontology class or property.
    pub fn uri(name: &str) -> String {
        format!("{NS}{name}")
    }

    /// Insert every schema constraint into `graph`.
    pub fn declare(graph: &mut Graph) {
        let triple = |s: &str, p: &str, o: &str| {
            Triple::new(Term::uri(Self::uri(s)), Term::uri(p), Term::uri(Self::uri(o)))
        };
        for &(sub, sup) in SUBCLASSES {
            graph.insert(&triple(sub, vocab::RDFS_SUBCLASS_OF, sup));
        }
        for &(sub, sup) in SUBPROPERTIES {
            graph.insert(&triple(sub, vocab::RDFS_SUBPROPERTY_OF, sup));
        }
        for &(p, c) in DOMAINS {
            graph.insert(&triple(p, vocab::RDFS_DOMAIN, c));
        }
        for &(p, c) in RANGES {
            graph.insert(&triple(p, vocab::RDFS_RANGE, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_everything() {
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        assert_eq!(g.schema().subclass.len(), SUBCLASSES.len());
        assert_eq!(g.schema().subproperty.len(), SUBPROPERTIES.len());
        assert_eq!(g.schema().domain.len(), DOMAINS.len());
        assert_eq!(g.schema().range.len(), RANGES.len());
    }

    #[test]
    fn creator_hierarchy_closes() {
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        let cl = g.schema_closure();
        let d = g.dict();
        let author = d.lookup(&Term::uri(Ontology::uri("author"))).unwrap();
        let creator = d.lookup(&Term::uri(Ontology::uri("creator"))).unwrap();
        assert!(cl.is_subproperty(author, creator));
        // author's range Author widens to Person and Agent.
        let person = d.lookup(&Term::uri(Ontology::uri("Person"))).unwrap();
        assert!(cl.ranges(author).contains(&person));
    }

    #[test]
    fn publication_has_deep_subtree() {
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        let cl = g.schema_closure();
        let d = g.dict();
        let publication = d.lookup(&Term::uri(Ontology::uri("Publication"))).unwrap();
        assert!(cl.sub_classes(publication).len() >= 8);
    }
}
