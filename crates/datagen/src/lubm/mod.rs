//! The LUBM-like benchmark: ontology, generator, query workload.

pub mod generator;
pub mod ontology;
pub mod queries;

pub use generator::{generate, LubmConfig};
pub use ontology::{Ontology, NS};
pub use queries::{motivating_queries, workload};
