//! The LUBM-like data generator.
//!
//! Deterministically expands a number of universities into departments,
//! faculty, students, courses and publications, following the shape of
//! the original Univ-Bench generator: every entity is typed with its
//! **most specific** class (a `FullProfessor` is never redundantly
//! asserted to be a `Professor` or `Person` — those types are implicit,
//! which is the whole point of reformulation/saturation), faculty hold
//! three `…DegreeFrom` edges to random universities, one full professor
//! per department is its `Chair` (`headOf`), students `memberOf` their
//! department while faculty `worksFor` it, and so on.

use jucq_model::{Graph, Term, TermId, TripleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::ontology::{Ontology, NS};

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LubmConfig {
    /// Number of universities (the LUBM scale factor).
    pub universities: usize,
    /// RNG seed; same config ⇒ same graph.
    pub seed: u64,
}

impl LubmConfig {
    /// A scale of `universities` with the default seed.
    pub fn new(universities: usize) -> Self {
        LubmConfig { universities, seed: 0x10b3 }
    }

    /// Approximate a configuration producing at least `target` data
    /// triples (one university yields roughly 55k).
    pub fn for_triples(target: usize) -> Self {
        Self::new(target.div_ceil(55_000).max(1))
    }
}

/// Interned vocabulary handles, resolved once.
struct V {
    rdf_type: TermId,
    university: TermId,
    department: TermId,
    research_group: TermId,
    research: TermId,
    full_prof: TermId,
    assoc_prof: TermId,
    asst_prof: TermId,
    lecturer: TermId,
    chair: TermId,
    undergrad: TermId,
    grad: TermId,
    teaching_assistant: TermId,
    research_assistant: TermId,
    journal_article: TermId,
    conference_paper: TermId,
    technical_report: TermId,
    book: TermId,
    course: TermId,
    graduate_course: TermId,
    works_for: TermId,
    head_of: TermId,
    member_of: TermId,
    undergrad_degree: TermId,
    masters_degree: TermId,
    doctoral_degree: TermId,
    advisor: TermId,
    takes_course: TermId,
    teacher_of: TermId,
    teaching_assistant_of: TermId,
    publication_author: TermId,
    sub_organization_of: TermId,
    research_project: TermId,
    name: TermId,
    email: TermId,
}

impl V {
    fn intern(graph: &mut Graph) -> V {
        let mut u = |n: &str| graph.dict_mut().encode_uri(&format!("{NS}{n}"));
        V {
            university: u("University"),
            department: u("Department"),
            research_group: u("ResearchGroup"),
            research: u("Research"),
            full_prof: u("FullProfessor"),
            assoc_prof: u("AssociateProfessor"),
            asst_prof: u("AssistantProfessor"),
            lecturer: u("Lecturer"),
            chair: u("Chair"),
            undergrad: u("UndergraduateStudent"),
            grad: u("GraduateStudent"),
            teaching_assistant: u("TeachingAssistant"),
            research_assistant: u("ResearchAssistant"),
            journal_article: u("JournalArticle"),
            conference_paper: u("ConferencePaper"),
            technical_report: u("TechnicalReport"),
            book: u("Book"),
            course: u("Course"),
            graduate_course: u("GraduateCourse"),
            works_for: u("worksFor"),
            head_of: u("headOf"),
            member_of: u("memberOf"),
            undergrad_degree: u("undergraduateDegreeFrom"),
            masters_degree: u("mastersDegreeFrom"),
            doctoral_degree: u("doctoralDegreeFrom"),
            advisor: u("advisor"),
            takes_course: u("takesCourse"),
            teacher_of: u("teacherOf"),
            teaching_assistant_of: u("teachingAssistantOf"),
            publication_author: u("publicationAuthor"),
            sub_organization_of: u("subOrganizationOf"),
            research_project: u("researchProject"),
            name: u("name"),
            email: u("emailAddress"),
            rdf_type: graph.rdf_type(),
        }
    }
}

/// The URI of university `u`.
pub fn university_uri(u: usize) -> String {
    format!("http://www.univ{u}.jucq.org")
}

/// The URI of department `d` of university `u`.
pub fn department_uri(u: usize, d: usize) -> String {
    format!("http://www.dept{d}.univ{u}.jucq.org")
}

struct Gen<'a> {
    graph: &'a mut Graph,
    v: V,
    rng: StdRng,
    universities: usize,
}

impl Gen<'_> {
    fn add(&mut self, s: TermId, p: TermId, o: TermId) {
        self.graph.insert_data_encoded(TripleId::new(s, p, o));
    }

    fn typed(&mut self, s: TermId, class: TermId) {
        let p = self.v.rdf_type;
        self.add(s, p, class);
    }

    fn entity(&mut self, uri: String) -> TermId {
        self.graph.dict_mut().encode_uri(&uri)
    }

    fn literal(&mut self, s: &str) -> TermId {
        self.graph.dict_mut().encode(&Term::literal(s))
    }

    fn random_university(&mut self) -> TermId {
        let u = self.rng.gen_range(0..self.universities);
        self.entity(university_uri(u))
    }

    fn named(&mut self, subject: TermId, label: &str) {
        let lit = self.literal(label);
        let p = self.v.name;
        self.add(subject, p, lit);
    }

    fn university(&mut self, u: usize) {
        let univ = self.entity(university_uri(u));
        self.typed(univ, self.v.university);
        self.named(univ, &format!("University{u}"));

        let n_depts = self.rng.gen_range(15..=20);
        for d in 0..n_depts {
            self.department(u, d, univ);
        }
    }

    fn department(&mut self, u: usize, d: usize, univ: TermId) {
        let dept = self.entity(department_uri(u, d));
        self.typed(dept, self.v.department);
        self.add(dept, self.v.sub_organization_of, univ);
        self.named(dept, &format!("Department{d}"));

        // Research groups.
        let n_groups = self.rng.gen_range(8..=12);
        for g in 0..n_groups {
            let group = self.entity(format!("{}/group{g}", department_uri(u, d)));
            self.typed(group, self.v.research_group);
            self.add(group, self.v.sub_organization_of, dept);
            if self.rng.gen_bool(0.5) {
                let project = self.entity(format!("{}/group{g}/research", department_uri(u, d)));
                self.typed(project, self.v.research);
                self.add(group, self.v.research_project, project);
            }
        }

        // Faculty.
        let mut faculty: Vec<TermId> = Vec::new();
        let mut professors: Vec<TermId> = Vec::new();
        let ranks = [
            (self.v.full_prof, self.rng.gen_range(7..=10), "fullProf", true),
            (self.v.assoc_prof, self.rng.gen_range(10..=14), "assocProf", true),
            (self.v.asst_prof, self.rng.gen_range(8..=11), "asstProf", true),
            (self.v.lecturer, self.rng.gen_range(5..=7), "lecturer", false),
        ];
        for (class, count, prefix, is_prof) in ranks {
            for i in 0..count {
                let person = self.entity(format!("{}/{prefix}{i}", department_uri(u, d)));
                // The department chair is a FullProfessor typed as
                // Chair (the most specific class) instead.
                let is_chair = class == self.v.full_prof && i == 0;
                self.typed(person, if is_chair { self.v.chair } else { class });
                if is_chair {
                    self.add(person, self.v.head_of, dept);
                } else {
                    self.add(person, self.v.works_for, dept);
                }
                let (ug, ms, dr) =
                    (self.random_university(), self.random_university(), self.random_university());
                self.add(person, self.v.undergrad_degree, ug);
                self.add(person, self.v.masters_degree, ms);
                self.add(person, self.v.doctoral_degree, dr);
                self.named(person, &format!("{prefix}{i}@dept{d}.univ{u}"));
                let email = self.literal(&format!("{prefix}{i}@dept{d}.univ{u}.jucq.org"));
                let p_email = self.v.email;
                self.add(person, p_email, email);
                faculty.push(person);
                if is_prof {
                    professors.push(person);
                }
            }
        }

        // Courses: two per faculty member, half graduate-level.
        let mut courses: Vec<TermId> = Vec::new();
        let mut grad_courses: Vec<TermId> = Vec::new();
        for (fi, &person) in faculty.iter().enumerate() {
            for k in 0..2 {
                let idx = fi * 2 + k;
                let course = self.entity(format!("{}/course{idx}", department_uri(u, d)));
                if idx % 2 == 0 {
                    self.typed(course, self.v.course);
                    courses.push(course);
                } else {
                    self.typed(course, self.v.graduate_course);
                    grad_courses.push(course);
                }
                self.add(person, self.v.teacher_of, course);
            }
        }

        // Publications by professors, with graduate co-authors added
        // once graduate students exist (below we collect pairs first).
        let mut publications: Vec<TermId> = Vec::new();
        for (pi, &prof) in professors.iter().enumerate() {
            let n_pubs = self.rng.gen_range(4..=8);
            for k in 0..n_pubs {
                let publication = self.entity(format!("{}/pub{pi}-{k}", department_uri(u, d)));
                let class = match self.rng.gen_range(0..10) {
                    0..=3 => self.v.journal_article,
                    4..=7 => self.v.conference_paper,
                    8 => self.v.technical_report,
                    _ => self.v.book,
                };
                self.typed(publication, class);
                self.add(publication, self.v.publication_author, prof);
                publications.push(publication);
            }
        }

        // Graduate students: ~3 per faculty member.
        let n_grads = faculty.len() * 3;
        for i in 0..n_grads {
            let grad = self.entity(format!("{}/grad{i}", department_uri(u, d)));
            self.typed(grad, self.v.grad);
            self.add(grad, self.v.member_of, dept);
            let ug = self.random_university();
            self.add(grad, self.v.undergrad_degree, ug);
            let prof = professors[self.rng.gen_range(0..professors.len())];
            self.add(grad, self.v.advisor, prof);
            for _ in 0..self.rng.gen_range(1..=3) {
                let c = grad_courses[self.rng.gen_range(0..grad_courses.len())];
                self.add(grad, self.v.takes_course, c);
            }
            self.named(grad, &format!("grad{i}@dept{d}.univ{u}"));
            // A fifth are teaching assistants, a fifth research
            // assistants (additional types).
            match i % 10 {
                0 | 5 => {
                    self.typed(grad, self.v.teaching_assistant);
                    let c = courses[self.rng.gen_range(0..courses.len())];
                    self.add(grad, self.v.teaching_assistant_of, c);
                }
                2 | 7 => self.typed(grad, self.v.research_assistant),
                _ => {}
            }
            // Co-author one publication in ~30% of cases.
            if self.rng.gen_bool(0.3) && !publications.is_empty() {
                let publication = publications[self.rng.gen_range(0..publications.len())];
                self.add(publication, self.v.publication_author, grad);
            }
        }

        // Undergraduates: ~8 per faculty member.
        let n_undergrads = faculty.len() * 8;
        for i in 0..n_undergrads {
            let student = self.entity(format!("{}/undergrad{i}", department_uri(u, d)));
            self.typed(student, self.v.undergrad);
            self.add(student, self.v.member_of, dept);
            for _ in 0..self.rng.gen_range(2..=3) {
                let c = courses[self.rng.gen_range(0..courses.len())];
                self.add(student, self.v.takes_course, c);
            }
            self.named(student, &format!("undergrad{i}@dept{d}.univ{u}"));
            // A fifth of undergraduates have a faculty advisor.
            if i % 5 == 0 {
                let prof = professors[self.rng.gen_range(0..professors.len())];
                self.add(student, self.v.advisor, prof);
            }
        }
    }
}

/// Generate a LUBM-like graph (ontology + data) for `config`.
pub fn generate(config: &LubmConfig) -> Graph {
    assert!(config.universities >= 1, "at least one university");
    let mut graph = Graph::new();
    Ontology::declare(&mut graph);
    let v = V::intern(&mut graph);
    let mut gen = Gen {
        graph: &mut graph,
        v,
        rng: StdRng::seed_from_u64(config.seed),
        universities: config.universities,
    };
    for u in 0..config.universities {
        gen.university(u);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::Term;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&LubmConfig::new(1));
        let b = generate(&LubmConfig::new(1));
        assert_eq!(a.data(), b.data());
        let c = generate(&LubmConfig { universities: 1, seed: 7 });
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn one_university_is_lubm_scale() {
        let g = generate(&LubmConfig::new(1));
        assert!((30_000..=120_000).contains(&g.len()), "LUBM(1) ≈ 100k triples; got {}", g.len());
    }

    #[test]
    fn scaling_is_roughly_linear() {
        let one = generate(&LubmConfig::new(1)).len();
        let three = generate(&LubmConfig::new(3)).len();
        assert!(three > 2 * one && three < 4 * one, "1→{one}, 3→{three}");
    }

    #[test]
    fn key_entities_exist_at_every_scale() {
        let g = generate(&LubmConfig::new(1));
        let d = g.dict();
        assert!(d.lookup(&Term::uri(university_uri(0))).is_some());
        assert!(d.lookup(&Term::uri(department_uri(0, 0))).is_some());
        assert!(d.lookup(&Term::uri(Ontology::uri("FullProfessor"))).is_some());
    }

    #[test]
    fn types_are_most_specific_only() {
        // No entity is directly typed `Person`, `Faculty` or
        // `Professor` — those are implicit.
        let mut g = generate(&LubmConfig::new(1));
        let ty = g.rdf_type();
        let d = g.dict();
        for general in ["Person", "Faculty", "Professor", "Student", "Publication"] {
            if let Some(c) = d.lookup(&Term::uri(Ontology::uri(general))) {
                let direct = g.data().iter().filter(|t| t.p == ty && t.o == c).count();
                assert_eq!(direct, 0, "{general} asserted directly");
            }
        }
    }

    #[test]
    fn chairs_head_their_department() {
        let mut g = generate(&LubmConfig::new(1));
        let ty = g.rdf_type();
        let d = g.dict();
        let chair = d.lookup(&Term::uri(Ontology::uri("Chair"))).unwrap();
        let head_of = d.lookup(&Term::uri(Ontology::uri("headOf"))).unwrap();
        let chairs: Vec<_> =
            g.data().iter().filter(|t| t.p == ty && t.o == chair).map(|t| t.s).collect();
        assert!(!chairs.is_empty());
        for c in chairs {
            assert!(
                g.data().iter().any(|t| t.s == c && t.p == head_of),
                "every chair heads something"
            );
        }
    }

    #[test]
    fn faculty_hold_three_degree_edges() {
        let mut g = generate(&LubmConfig::new(2));
        let ty = g.rdf_type();
        let d = g.dict();
        let full = d.lookup(&Term::uri(Ontology::uri("FullProfessor"))).unwrap();
        let ug = d.lookup(&Term::uri(Ontology::uri("undergraduateDegreeFrom"))).unwrap();
        let ms = d.lookup(&Term::uri(Ontology::uri("mastersDegreeFrom"))).unwrap();
        let dr = d.lookup(&Term::uri(Ontology::uri("doctoralDegreeFrom"))).unwrap();
        let a_prof = g
            .data()
            .iter()
            .find(|t| t.p == ty && t.o == full)
            .map(|t| t.s)
            .expect("some full professor");
        for p in [ug, ms, dr] {
            assert!(g.data().iter().any(|t| t.s == a_prof && t.p == p));
        }
    }

    #[test]
    fn literal_objects_only_on_literal_properties() {
        // Object properties must never carry literal objects, and
        // literal-bearing properties must be in LITERAL_PROPERTIES.
        use super::super::ontology::LITERAL_PROPERTIES;
        let g = generate(&LubmConfig::new(1));
        let d = g.dict();
        let literal_prop_ids: Vec<_> = LITERAL_PROPERTIES
            .iter()
            .filter_map(|p| d.lookup(&Term::uri(Ontology::uri(p))))
            .collect();
        for t in g.data() {
            if t.o.is_literal() {
                assert!(
                    literal_prop_ids.contains(&t.p),
                    "literal object under non-literal property {}",
                    d.lexical(t.p)
                );
            }
        }
    }

    #[test]
    fn for_triples_hits_target_order() {
        let cfg = LubmConfig::for_triples(150_000);
        let g = generate(&cfg);
        assert!(g.len() >= 100_000, "requested ≥150k-ish, got {}", g.len());
    }
}
