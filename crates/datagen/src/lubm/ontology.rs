//! The Univ-Bench-style RDFS ontology.
//!
//! A faithful re-implementation of the query-relevant fragment of the
//! LUBM ontology \[26\]: the class hierarchy under `Person`,
//! `Organization`, `Publication` and `Work`, and the property
//! hierarchies under `memberOf` and `degreeFrom`, with their domain and
//! range constraints. Literal-valued properties (`name`,
//! `emailAddress`, …) deliberately carry no class constraints: in LUBM
//! they apply to entities of every kind, and constraining them would
//! distort reformulation sizes (and type literals, see the generalized
//! triple note in `jucq-reformulation::saturation`).

use jucq_model::{vocab, Graph, Term, Triple};

/// The ontology namespace.
pub const NS: &str = "http://jucq.example.org/univ-bench#";

/// `(class, superclass)` pairs of the class hierarchy.
pub const SUBCLASSES: &[(&str, &str)] = &[
    // Organizations.
    ("University", "Organization"),
    ("College", "Organization"),
    ("Department", "Organization"),
    ("Institute", "Organization"),
    ("Program", "Organization"),
    ("ResearchGroup", "Organization"),
    // People.
    ("Employee", "Person"),
    ("Student", "Person"),
    ("Director", "Person"),
    ("TeachingAssistant", "Person"),
    ("ResearchAssistant", "Person"),
    ("Faculty", "Employee"),
    ("AdministrativeStaff", "Employee"),
    ("Professor", "Faculty"),
    ("Lecturer", "Faculty"),
    ("PostDoc", "Faculty"),
    ("FullProfessor", "Professor"),
    ("AssociateProfessor", "Professor"),
    ("AssistantProfessor", "Professor"),
    ("VisitingProfessor", "Professor"),
    ("Chair", "Professor"),
    ("Dean", "Professor"),
    ("UndergraduateStudent", "Student"),
    ("GraduateStudent", "Student"),
    // Publications.
    ("Article", "Publication"),
    ("Book", "Publication"),
    ("Manual", "Publication"),
    ("Software", "Publication"),
    ("Specification", "Publication"),
    ("UnofficialPublication", "Publication"),
    ("JournalArticle", "Article"),
    ("ConferencePaper", "Article"),
    ("TechnicalReport", "Article"),
    // Works.
    ("Course", "Work"),
    ("Research", "Work"),
    ("GraduateCourse", "Course"),
];

/// `(property, superproperty)` pairs.
pub const SUBPROPERTIES: &[(&str, &str)] = &[
    ("worksFor", "memberOf"),
    ("headOf", "worksFor"),
    ("undergraduateDegreeFrom", "degreeFrom"),
    ("mastersDegreeFrom", "degreeFrom"),
    ("doctoralDegreeFrom", "degreeFrom"),
];

/// `(property, domain class)` pairs.
pub const DOMAINS: &[(&str, &str)] = &[
    ("memberOf", "Person"),
    ("degreeFrom", "Person"),
    ("advisor", "Person"),
    ("takesCourse", "Student"),
    ("teacherOf", "Faculty"),
    ("teachingAssistantOf", "TeachingAssistant"),
    ("publicationAuthor", "Publication"),
    ("subOrganizationOf", "Organization"),
    ("researchProject", "ResearchGroup"),
];

/// `(property, range class)` pairs.
pub const RANGES: &[(&str, &str)] = &[
    ("memberOf", "Organization"),
    ("degreeFrom", "University"),
    ("advisor", "Professor"),
    ("takesCourse", "Course"),
    ("teacherOf", "Course"),
    ("teachingAssistantOf", "Course"),
    ("publicationAuthor", "Person"),
    ("subOrganizationOf", "Organization"),
    ("researchProject", "Research"),
];

/// Literal-valued properties, constraint-free by design.
pub const LITERAL_PROPERTIES: &[&str] = &["name", "emailAddress", "telephone", "researchInterest"];

/// Handle on the ontology vocabulary.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ontology;

impl Ontology {
    /// The full URI of an ontology class or property.
    pub fn uri(name: &str) -> String {
        format!("{NS}{name}")
    }

    /// Insert every schema constraint into `graph`.
    pub fn declare(graph: &mut Graph) {
        let triple = |s: &str, p: &str, o: &str| {
            Triple::new(Term::uri(Self::uri(s)), Term::uri(p), Term::uri(Self::uri(o)))
        };
        for &(sub, sup) in SUBCLASSES {
            graph.insert(&triple(sub, vocab::RDFS_SUBCLASS_OF, sup));
        }
        for &(sub, sup) in SUBPROPERTIES {
            graph.insert(&triple(sub, vocab::RDFS_SUBPROPERTY_OF, sup));
        }
        for &(p, c) in DOMAINS {
            graph.insert(&triple(p, vocab::RDFS_DOMAIN, c));
        }
        for &(p, c) in RANGES {
            graph.insert(&triple(p, vocab::RDFS_RANGE, c));
        }
    }

    /// Names of all declared classes (derived from the hierarchy).
    pub fn class_names() -> Vec<&'static str> {
        let mut out: Vec<&str> = Vec::new();
        for &(a, b) in SUBCLASSES {
            for c in [a, b] {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        for &(_, c) in DOMAINS.iter().chain(RANGES) {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_all_constraints() {
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        assert_eq!(g.schema().subclass.len(), SUBCLASSES.len());
        assert_eq!(g.schema().subproperty.len(), SUBPROPERTIES.len());
        assert_eq!(g.schema().domain.len(), DOMAINS.len());
        assert_eq!(g.schema().range.len(), RANGES.len());
        assert_eq!(g.len(), 0, "ontology is pure schema");
    }

    #[test]
    fn hierarchy_depth_matches_lubm() {
        // FullProfessor ⊑ Professor ⊑ Faculty ⊑ Employee ⊑ Person.
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        let cl = g.schema_closure();
        let d = g.dict();
        let full = d.lookup(&Term::uri(Ontology::uri("FullProfessor"))).unwrap();
        let person = d.lookup(&Term::uri(Ontology::uri("Person"))).unwrap();
        assert!(cl.is_subclass(full, person));
        assert_eq!(cl.super_classes(full).len(), 4);
    }

    #[test]
    fn degree_from_has_three_subproperties() {
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        let cl = g.schema_closure();
        let d = g.dict();
        let degree = d.lookup(&Term::uri(Ontology::uri("degreeFrom"))).unwrap();
        assert_eq!(cl.sub_properties(degree).len(), 3, "paper Table 1: t2 has 4 reformulations");
        let member = d.lookup(&Term::uri(Ontology::uri("memberOf"))).unwrap();
        assert_eq!(cl.sub_properties(member).len(), 2, "paper Table 1: t3 has 3 reformulations");
    }

    #[test]
    fn class_count_is_lubm_scale() {
        let n = Ontology::class_names().len();
        assert!((35..=50).contains(&n), "LUBM has ~43 classes, ours has {n}");
    }

    #[test]
    fn deep_domains_widen() {
        // teacherOf has domain Faculty; the closure widens it to
        // Employee and Person, so (x τ Person) reformulates into
        // (x teacherOf _).
        let mut g = Graph::new();
        Ontology::declare(&mut g);
        let cl = g.schema_closure();
        let d = g.dict();
        let teacher_of = d.lookup(&Term::uri(Ontology::uri("teacherOf"))).unwrap();
        let person = d.lookup(&Term::uri(Ontology::uri("Person"))).unwrap();
        assert!(cl.properties_with_domain(person).contains(&teacher_of));
    }
}
