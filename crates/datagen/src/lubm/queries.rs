//! The LUBM query workload: the paper's motivating queries q1/q2 and
//! the 28-query study workload Q01–Q28.
//!
//! The paper's appendix with the exact query texts is not part of the
//! available source (DESIGN.md §3), so Q01–Q28 are reconstructed to
//! span the same characteristics Table 4 reports: 1–7 atoms,
//! reformulation sizes from 1 to several hundred thousand union terms
//! (driven by class-variable atoms and the class/property hierarchies),
//! and result sizes from empty to dataset-scale. Queries reference only
//! entities that exist at every scale (university 0, department 0 of
//! university 0).

use super::generator::{department_uri, university_uri};
use super::ontology::NS;
use crate::NamedQuery;

fn prefixed(body: &str) -> String {
    format!("PREFIX ub: <{NS}>\n{body}")
}

/// The paper's motivating queries (Section 3): `q1` (3 atoms, Table 1/
/// Table 2) and `q2` (6 atoms, Table 3).
pub fn motivating_queries() -> Vec<NamedQuery> {
    let univ0 = university_uri(0);
    let dept0 = department_uri(0, 0);
    vec![
        NamedQuery::new(
            "q1",
            prefixed(&format!(
                "SELECT ?x ?y WHERE {{ ?x a ?y . ?x ub:degreeFrom <{univ0}> . \
                 ?x ub:memberOf <{dept0}> }}"
            )),
        ),
        NamedQuery::new(
            "q2",
            prefixed(&format!(
                "SELECT ?x ?u ?y ?v ?z WHERE {{ ?x a ?u . ?y a ?v . \
                 ?x ub:mastersDegreeFrom <{univ0}> . ?y ub:doctoralDegreeFrom <{univ0}> . \
                 ?x ub:memberOf ?z . ?y ub:memberOf ?z }}"
            )),
        ),
    ]
}

/// The 28-query LUBM workload.
pub fn workload() -> Vec<NamedQuery> {
    let univ0 = university_uri(0);
    let dept0 = department_uri(0, 0);
    let q = |name: &str, body: String| NamedQuery::new(name, prefixed(&body));
    vec![
        // -- single atoms, increasing reformulation size --
        // Q01: leaf class, no reformulation beyond the original.
        q("Q01", "SELECT ?x WHERE { ?x a ub:FullProfessor }".into()),
        // Q02: mid-hierarchy class (6 subclasses + advisor range).
        q("Q02", "SELECT ?x WHERE { ?x a ub:Professor }".into()),
        // Q03: top class Person — the classic expensive type atom.
        q("Q03", "SELECT ?x WHERE { ?x a ub:Person }".into()),
        // Q04: property hierarchy (memberOf ⊒ worksFor ⊒ headOf).
        q("Q04", "SELECT ?x ?y WHERE { ?x ub:memberOf ?y }".into()),
        // Q05: degreeFrom with a constant (4 reformulations; paper t2).
        q("Q05", format!("SELECT ?x WHERE {{ ?x ub:degreeFrom <{univ0}> }}")),
        // -- two atoms --
        // Q06: Student (3 + takesCourse domain) joined with courses.
        q("Q06", "SELECT ?x WHERE { ?x a ub:Student . ?x ub:takesCourse ?c }".into()),
        // Q07: worksFor hierarchy × leaf class.
        q("Q07", "SELECT ?x ?y WHERE { ?x ub:worksFor ?y . ?x a ub:FullProfessor }".into()),
        // Q08: two selective constants (the good case for UCQ).
        q(
            "Q08",
            format!("SELECT ?x WHERE {{ ?x ub:memberOf <{dept0}> . ?x ub:degreeFrom <{univ0}> }}"),
        ),
        // Q09: two class-variable atoms — quadratic reformulation that
        // breaks the stricter engines (paper: Q9 fails on DB2/MySQL).
        q(
            "Q09",
            "SELECT ?x ?y WHERE { ?x a ?cx . ?y a ?cy . ?x ub:advisor ?y }".into(),
        ),
        // Q10: one class variable + selective membership.
        q("Q10", format!("SELECT ?x ?y WHERE {{ ?x a ?y . ?x ub:memberOf <{dept0}> }}")),
        // -- three atoms --
        // Q11: no reformulation at all (control).
        q(
            "Q11",
            "SELECT ?s ?c WHERE { ?s ub:takesCourse ?c . ?p ub:teacherOf ?c . ?p a ub:FullProfessor }"
                .into(),
        ),
        // Q12: Article hierarchy through publicationAuthor.
        q("Q12", "SELECT ?p WHERE { ?pub ub:publicationAuthor ?p . ?pub a ub:Article }".into()),
        // Q13: advisor chain to a department head.
        q("Q13", "SELECT ?x WHERE { ?x ub:advisor ?a . ?a ub:headOf ?d }".into()),
        // Q14: Employee (deep class) with a literal-valued property.
        q("Q14", "SELECT ?x ?n WHERE { ?x a ub:Employee . ?x ub:name ?n }".into()),
        // Q15: four atoms, leaf classes, selective.
        q(
            "Q15",
            "SELECT ?x WHERE { ?x a ub:GraduateStudent . ?x ub:memberOf ?d . \
             ?x ub:advisor ?p . ?p a ub:Chair }"
                .into(),
        ),
        // Q16: class variable + three constants/functional atoms.
        q(
            "Q16",
            format!(
                "SELECT ?x ?t WHERE {{ ?x a ?t . ?x ub:worksFor <{dept0}> . \
                 ?x ub:doctoralDegreeFrom ?u . ?x ub:emailAddress ?e }}"
            ),
        ),
        // Q17: four-atom star, no reformulation.
        q(
            "Q17",
            format!(
                "SELECT ?p WHERE {{ ?p ub:teacherOf ?c . ?c a ub:GraduateCourse . \
                 ?s ub:takesCourse ?c . ?s ub:undergraduateDegreeFrom <{univ0}> }}"
            ),
        ),
        // Q18: five atoms mixing Faculty and both property hierarchies.
        q(
            "Q18",
            "SELECT ?s WHERE { ?s ub:advisor ?p . ?p a ub:Faculty . ?p ub:worksFor ?d . \
             ?s ub:memberOf ?d . ?s ub:takesCourse ?c }"
                .into(),
        ),
        // Q19: class variable in a five-atom selective query.
        q(
            "Q19",
            format!(
                "SELECT ?x ?t WHERE {{ ?x a ?t . ?x ub:memberOf <{dept0}> . \
                 ?x ub:undergraduateDegreeFrom <{univ0}> . ?x ub:name ?n . ?x ub:emailAddress ?e }}"
            ),
        ),
        // Q20: organization structure, no reformulation.
        q(
            "Q20",
            format!(
                "SELECT ?d WHERE {{ ?d ub:subOrganizationOf <{univ0}> . \
                 ?g ub:subOrganizationOf ?d . ?g a ub:ResearchGroup }}"
            ),
        ),
        // Q21: Organization — wide class with many range-derived
        // reformulations.
        q("Q21", "SELECT ?x WHERE { ?x a ub:Organization }".into()),
        // Q22: six atoms, small reformulation, cyclic join structure.
        q(
            "Q22",
            "SELECT ?s ?p WHERE { ?s ub:advisor ?p . ?p a ub:FullProfessor . \
             ?p ub:teacherOf ?c . ?s ub:takesCourse ?c . ?s ub:memberOf ?d . ?p ub:worksFor ?d }"
                .into(),
        ),
        // Q23: Employee × selective membership.
        q("Q23", format!("SELECT ?x WHERE {{ ?x a ub:Employee . ?x ub:memberOf <{dept0}> }}")),
        // Q24: degreeFrom × University class × Chair.
        q(
            "Q24",
            "SELECT ?x ?u WHERE { ?x ub:degreeFrom ?u . ?u a ub:University . ?x a ub:Chair }".into(),
        ),
        // Q25: seven atoms across the advising/teaching structure.
        q(
            "Q25",
            "SELECT ?s WHERE { ?s a ub:UndergraduateStudent . ?s ub:takesCourse ?c . \
             ?f ub:teacherOf ?c . ?f a ub:Professor . ?f ub:worksFor ?d . \
             ?d ub:subOrganizationOf ?u . ?s ub:advisor ?f }"
                .into(),
        ),
        // Q26: Publication hierarchy with a Chair author.
        q(
            "Q26",
            "SELECT ?pub WHERE { ?pub a ub:Publication . ?pub ub:publicationAuthor ?a . \
             ?a a ub:Chair }"
                .into(),
        ),
        // Q27: property-variable atom (instantiated over the whole
        // property universe).
        q("Q27", format!("SELECT ?x ?p WHERE {{ ?x ?p <{univ0}> }}")),
        // Q28: two class variables over joined members — the paper's
        // "union of 318,096 CQs" shape that no engine accepts as a UCQ.
        q(
            "Q28",
            "SELECT ?x ?y ?cx ?cy WHERE { ?x a ?cx . ?y a ?cy . ?x ub:memberOf ?d . \
             ?y ub:memberOf ?d . ?x ub:advisor ?y }"
                .into(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_28_distinct_queries() {
        let w = workload();
        assert_eq!(w.len(), 28);
        let mut names: Vec<&str> = w.iter().map(|q| q.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn motivating_queries_match_paper_shapes() {
        let m = motivating_queries();
        assert_eq!(m.len(), 2);
        // q1 has 3 triples, q2 has 6.
        assert_eq!(m[0].sparql.matches(" . ").count(), 2);
        assert_eq!(m[1].sparql.matches(" . ").count(), 5);
    }

    #[test]
    fn queries_only_reference_scale_safe_entities() {
        for q in workload().iter().chain(&motivating_queries()) {
            for uri_start in q.sparql.match_indices("<http://www.") {
                let rest = &q.sparql[uri_start.0..];
                let uri: &str = &rest[1..rest.find('>').expect("closed uri")];
                assert!(
                    uri == university_uri(0) || uri == department_uri(0, 0),
                    "{}: unexpected entity {uri}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn atom_counts_span_one_to_seven() {
        let counts: Vec<usize> = workload()
            .iter()
            .map(|q| {
                // Rough atom count: number of ' . '-separated groups in
                // the WHERE block + 1.
                q.sparql.split('{').nth(1).expect("where block").matches(" . ").count() + 1
            })
            .collect();
        assert!(counts.contains(&1));
        assert!(counts.iter().any(|&c| c >= 6));
    }
}
