//! # jucq-datagen — synthetic RDF benchmark data and workloads
//!
//! From-scratch re-implementations of the two datasets the paper
//! evaluates on (§5.1):
//!
//! * [`lubm`] — a Univ-Bench-style ontology and scalable generator
//!   (universities → departments → faculty / students / courses /
//!   publications), with the paper's motivating queries q1/q2 and a
//!   28-query workload Q01–Q28;
//! * [`dblp`] — a bibliography-style ontology and generator (authors,
//!   publications, venues with heavy-tailed authorship), with a
//!   10-query workload Q01–Q10.
//!
//! Both generators are **deterministic** for a given configuration
//! (seeded ChaCha RNG) so experiments are reproducible. Queries are
//! exposed as SPARQL-BGP strings (parsed by `jucq-core`), referencing
//! only entities guaranteed to exist at every scale (university 0,
//! department 0).
//!
//! DESIGN.md §3 records why synthetic stand-ins preserve the paper's
//! phenomena: reformulation sizes are driven by the ontology (which we
//! model faithfully), and cardinalities by the data distributions
//! (which we mirror).

#![warn(missing_docs)]

pub mod dblp;
pub mod lubm;

/// A named benchmark query: identifier + SPARQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedQuery {
    /// Identifier, e.g. `Q07` or `q1`.
    pub name: String,
    /// SPARQL-BGP text.
    pub sparql: String,
}

impl NamedQuery {
    pub(crate) fn new(name: impl Into<String>, sparql: impl Into<String>) -> Self {
        NamedQuery { name: name.into(), sparql: sparql.into() }
    }
}
