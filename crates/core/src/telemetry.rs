//! Workload telemetry: building [`QueryRecord`]s from answered queries
//! and replaying a recorded log against the current build.
//!
//! The record side renders each answered query back to normalized
//! SPARQL (so the log is self-contained and re-parseable), fingerprints
//! the canonicalized query and the physical plan, and attaches the
//! per-node estimate/actual profile of the run. The replay side
//! ([`replay`]) re-executes every recorded query under its recorded
//! strategy and diffs row counts, outcomes, latency percentiles, and
//! Q-error drift into a [`ReplayReport`] — the regression harness
//! behind `jucq replay`.

use std::fmt::Write as _;
use std::hash::Hasher as _;

use jucq_model::hash::FxHasher;
use jucq_model::{Dictionary, Term};
use jucq_obs::export::escape_json;
use jucq_obs::record::{q_error_safe, NodeRecord, QueryRecord, RecordCounters};
use jucq_reformulation::{BgpQuery, Cover};
use jucq_store::{ExecProfile, PatternTerm};

use crate::database::{AnswerError, AnswerReport, RdfDatabase};
use crate::plan_cache::PlanCacheStats;
use crate::strategy::Strategy;

/// Render `q` back to parseable SPARQL under `dict`.
///
/// Variables print as `?v<N>`, URIs in angle brackets, literals with
/// only `"` and `\` escaped (the tokenizer's `\X → X` rule makes that
/// round-trip), blank constants with the `_:` prefix (not re-parseable
/// — replay reports those queries as parse errors instead of guessing).
pub fn render_sparql(q: &BgpQuery, dict: &Dictionary) -> String {
    let term = |t: &PatternTerm| match t {
        PatternTerm::Var(v) => format!("?v{v}"),
        PatternTerm::Const(id) => match dict.decode(*id) {
            Term::Uri(u) => format!("<{u}>"),
            Term::Literal(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    if c == '"' || c == '\\' {
                        out.push('\\');
                    }
                    out.push(c);
                }
                out.push('"');
                out
            }
            Term::Blank(b) => format!("_:{b}"),
        },
    };
    let mut out = String::from("SELECT");
    if q.head.is_empty() {
        // `SELECT *`-less grammar: a headless query keeps no variables;
        // render a `*` so the text stays parseable.
        out.push_str(" *");
    }
    for v in &q.head {
        let _ = write!(out, " ?v{v}");
    }
    out.push_str(" WHERE {");
    for (i, a) in q.atoms.iter().enumerate() {
        if i > 0 {
            out.push_str(" .");
        }
        let _ = write!(out, " {} {} {}", term(&a.s), term(&a.p), term(&a.o));
    }
    out.push_str(" }");
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
    out
}

fn fx_hex(text: &str) -> String {
    let mut h = FxHasher::default();
    h.write(text.as_bytes());
    format!("{:016x}", h.finish())
}

/// Stable fingerprint of `q`: the hash of its canonicalized rendering,
/// so the same query shape fingerprints identically regardless of the
/// variable numbering or atom order it arrived with. (Constants render
/// through the dictionary, so the fingerprint is also independent of
/// interning order.)
pub fn query_fingerprint(q: &BgpQuery, dict: &Dictionary) -> String {
    let (canonical, _) = q.canonicalize();
    fx_hex(&render_sparql(&canonical, dict))
}

/// Fingerprint of a physical plan: the hash of its node labels in
/// execution order.
pub fn plan_fingerprint(profile: &ExecProfile) -> String {
    let mut text = String::new();
    for n in &profile.nodes {
        text.push_str(&n.label);
        text.push('\n');
    }
    fx_hex(&text)
}

fn outcome_name(result: &Result<(AnswerReport, Option<ExecProfile>), AnswerError>) -> &'static str {
    use jucq_store::EngineError;
    match result {
        Ok(_) => "ok",
        Err(AnswerError::Engine(EngineError::UnionTooLarge { .. })) => "union_too_large",
        Err(AnswerError::Engine(EngineError::MemoryBudgetExceeded { .. })) => "memory_breach",
        Err(AnswerError::Engine(EngineError::Timeout { .. })) => "deadline",
        Err(AnswerError::Engine(EngineError::Cancelled)) => "cancelled",
        Err(AnswerError::Cover(_)) => "cover_error",
    }
}

/// `Some(hit?)` when the stat pair shows the cache was consulted for
/// this query, `None` when there is no cache or no lookup happened.
fn cache_hit(before: Option<&PlanCacheStats>, after: Option<&PlanCacheStats>) -> Option<bool> {
    let (b, a) = (before?, after?);
    let lookups = (a.hits + a.misses).checked_sub(b.hits + b.misses)?;
    (lookups > 0).then_some(a.hits > b.hits)
}

fn plan_cache_hit(before: Option<&PlanCacheStats>, after: Option<&PlanCacheStats>) -> Option<bool> {
    let (b, a) = (before?, after?);
    let lookups = (a.plan_hits + a.plan_misses).checked_sub(b.plan_hits + b.plan_misses)?;
    (lookups > 0).then_some(a.plan_hits > b.plan_hits)
}

/// Build the structured log record of one answered (or failed) query.
/// `seq` is left at 0 — the sink assigns it on submit. Takes the
/// dictionary and profile rather than the database so both the
/// `&mut RdfDatabase` path and a pinned serving snapshot can build
/// records.
pub(crate) fn build_record(
    dict: &jucq_model::Dictionary,
    profile: &jucq_store::EngineProfile,
    q: &BgpQuery,
    strategy: &Strategy,
    result: &Result<(AnswerReport, Option<ExecProfile>), AnswerError>,
    stats_before: Option<&PlanCacheStats>,
    stats_after: Option<&PlanCacheStats>,
) -> QueryRecord {
    let mut rec = QueryRecord {
        query: render_sparql(q, dict),
        fingerprint: query_fingerprint(q, dict),
        strategy: strategy.name().to_owned(),
        profile: profile.plan_cache_key(),
        outcome: outcome_name(result).to_owned(),
        cover_cache_hit: cache_hit(stats_before, stats_after),
        plan_cache_hit: plan_cache_hit(stats_before, stats_after),
        ..QueryRecord::default()
    };
    let Ok((report, exec_profile)) = result else {
        return rec;
    };
    rec.rows = report.rows.len() as u64;
    rec.union_terms = report.union_terms as u64;
    rec.planning_ns = report.planning_time.as_nanos() as u64;
    rec.eval_ns = report.eval_time.as_nanos() as u64;
    rec.cover = report.cover.as_ref().map(|c| {
        c.fragments().into_iter().map(|f| f.into_iter().map(|i| i as u64).collect()).collect()
    });
    let c = report.counters;
    rec.counters = RecordCounters {
        tuples_scanned: c.tuples_scanned,
        tuples_joined: c.tuples_joined,
        tuples_materialized: c.tuples_materialized,
        tuples_deduped: c.tuples_deduped,
        sip_probes: c.sip_probes,
        sip_drops: c.sip_drops,
        range_scans: c.range_scans,
        view_hits: c.view_hits,
        sorts_elided: c.sorts_elided,
        gallop_seeks: c.gallop_seeks,
    };
    rec.range_eligible = report.range_eligible as u64;
    rec.range_scans_used = c.range_scans;
    rec.view_catalog_size = report.view_catalog_size as u64;
    if let Some(p) = exec_profile {
        rec.plan_fingerprint = Some(plan_fingerprint(p));
        rec.nodes = p
            .nodes
            .iter()
            .map(|n| NodeRecord {
                label: n.label.clone(),
                est_rows: n.est_rows,
                actual_rows: n.actual_rows,
                elapsed_ns: n.elapsed_ns,
                q_error: q_error_safe(n.est_rows, n.actual_rows),
            })
            .collect();
        rec.max_q_error = rec.nodes.iter().filter_map(|n| n.q_error).reduce(f64::max);
        if let Some(threshold) = jucq_obs::record::slow_threshold() {
            if report.planning_time + report.eval_time >= threshold {
                rec.slow_explain = Some(jucq_store::explain::render_analyze_report(
                    &profile.name,
                    report.cover.as_ref().map_or(1, Cover::len),
                    report.union_terms,
                    report.rows.len(),
                    rec.eval_ns,
                    &c,
                    p,
                ));
            }
        }
    }
    rec
}

/// Latency percentiles (nearest-rank over exact samples), nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl LatencyPercentiles {
    /// Nearest-rank percentiles of `samples` (order irrelevant); zeros
    /// when empty.
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| {
            let n = sorted.len();
            let r = ((q * n as f64).ceil() as usize).clamp(1, n);
            sorted[r - 1]
        };
        LatencyPercentiles { p50: rank(0.50), p95: rank(0.95), p99: rank(0.99) }
    }
}

/// One replayed record's comparison against its recording.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    /// The recording's sequence number.
    pub seq: u64,
    /// The recording's query fingerprint.
    pub fingerprint: String,
    /// Strategy short name replayed under.
    pub strategy: String,
    /// Recorded outcome string.
    pub recorded_outcome: String,
    /// Replayed outcome string (`None` when replay itself failed).
    pub replayed_outcome: Option<String>,
    /// Recorded answer rows.
    pub recorded_rows: u64,
    /// Replayed answer rows.
    pub replayed_rows: Option<u64>,
    /// Whether rows (for `ok`/`ok`) or outcomes (otherwise) match.
    pub rows_match: bool,
    /// Recorded evaluation time, nanoseconds.
    pub recorded_eval_ns: u64,
    /// Replayed evaluation time, nanoseconds.
    pub replayed_eval_ns: Option<u64>,
    /// Recorded largest per-node Q-error.
    pub recorded_max_q_error: Option<f64>,
    /// Replayed largest per-node Q-error.
    pub replayed_max_q_error: Option<f64>,
    /// Why the record could not be replayed (parse/strategy failure).
    pub error: Option<String>,
}

/// The regression report `jucq replay` prints and writes.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Records replayed.
    pub total: usize,
    /// `ok`/`ok` pairs whose row counts disagree.
    pub row_mismatches: usize,
    /// Pairs whose outcome strings disagree.
    pub outcome_mismatches: usize,
    /// Records that could not be replayed at all.
    pub replay_errors: usize,
    /// Percentiles of the recorded evaluation times.
    pub recorded_latency: LatencyPercentiles,
    /// Percentiles of the replayed evaluation times.
    pub replayed_latency: LatencyPercentiles,
    /// Largest `|replayed − recorded|` max-Q-error drift.
    pub max_q_error_drift: Option<f64>,
    /// Mean absolute max-Q-error drift.
    pub mean_q_error_drift: Option<f64>,
    /// Per-record detail, in log order.
    pub entries: Vec<ReplayEntry>,
}

impl ReplayReport {
    /// Mismatches that should fail a regression gate.
    pub fn mismatches(&self) -> usize {
        self.row_mismatches + self.outcome_mismatches + self.replay_errors
    }

    /// Render as a JSON document (schema `jucq-replay/1`).
    pub fn to_json(&self) -> String {
        let opt_f64 = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_owned(),
        };
        let pct = |p: &LatencyPercentiles| {
            format!("{{\"p50\":{},\"p95\":{},\"p99\":{}}}", p.p50, p.p95, p.p99)
        };
        let mut out = String::with_capacity(512 + self.entries.len() * 160);
        let _ = write!(
            out,
            "{{\"schema\":\"jucq-replay/1\",\"total\":{},\"row_mismatches\":{},\
             \"outcome_mismatches\":{},\"replay_errors\":{}",
            self.total, self.row_mismatches, self.outcome_mismatches, self.replay_errors,
        );
        let _ = write!(
            out,
            ",\"recorded_latency_ns\":{},\"replayed_latency_ns\":{}",
            pct(&self.recorded_latency),
            pct(&self.replayed_latency),
        );
        let _ = write!(
            out,
            ",\"latency_delta_ns\":{{\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.replayed_latency.p50 as i64 - self.recorded_latency.p50 as i64,
            self.replayed_latency.p95 as i64 - self.recorded_latency.p95 as i64,
            self.replayed_latency.p99 as i64 - self.recorded_latency.p99 as i64,
        );
        let _ = write!(
            out,
            ",\"max_q_error_drift\":{},\"mean_q_error_drift\":{}",
            opt_f64(self.max_q_error_drift),
            opt_f64(self.mean_q_error_drift),
        );
        out.push_str(",\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"fingerprint\":\"{}\",\"strategy\":\"{}\",\
                 \"recorded_outcome\":\"{}\",\"replayed_outcome\":{},\
                 \"recorded_rows\":{},\"replayed_rows\":{},\"rows_match\":{},\
                 \"recorded_eval_ns\":{},\"replayed_eval_ns\":{},\
                 \"recorded_max_q_error\":{},\"replayed_max_q_error\":{},\"error\":{}}}",
                e.seq,
                escape_json(&e.fingerprint),
                escape_json(&e.strategy),
                escape_json(&e.recorded_outcome),
                e.replayed_outcome
                    .as_deref()
                    .map_or("null".to_owned(), |o| format!("\"{}\"", escape_json(o))),
                e.recorded_rows,
                e.replayed_rows.map_or("null".to_owned(), |r| r.to_string()),
                e.rows_match,
                e.recorded_eval_ns,
                e.replayed_eval_ns.map_or("null".to_owned(), |r| r.to_string()),
                opt_f64(e.recorded_max_q_error),
                opt_f64(e.replayed_max_q_error),
                e.error.as_deref().map_or("null".to_owned(), |m| format!("\"{}\"", escape_json(m))),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Rebuild the [`Strategy`] a record was answered under. Budgeted
/// searches replay with their default budgets (the recorded knobs are
/// in the profile fingerprint, not the strategy name); `Cover` records
/// rebuild their exact recorded fragments.
fn strategy_for(rec: &QueryRecord, q: &BgpQuery) -> Result<Strategy, String> {
    match rec.strategy.as_str() {
        "SAT" => Ok(Strategy::Saturation),
        "UCQ" => Ok(Strategy::Ucq),
        "SCQ" => Ok(Strategy::Scq),
        "Range" => Ok(Strategy::Range),
        "UCQmin" => Ok(Strategy::minimized_ucq_default()),
        "ECov" => Ok(Strategy::ecov_default()),
        "GCov" => Ok(Strategy::gcov_default()),
        "Cover" => {
            let fragments = rec.cover.as_ref().ok_or("Cover record without a cover")?;
            let fragments: Vec<Vec<usize>> =
                fragments.iter().map(|f| f.iter().map(|&i| i as usize).collect()).collect();
            Cover::new(q, fragments).map(Strategy::FixedCover).map_err(|e| format!("cover: {e}"))
        }
        other => Err(format!("unknown strategy `{other}`")),
    }
}

/// Re-execute `records` against `db` and diff the results.
///
/// Row counts are compared for `ok`/`ok` pairs; for anything else the
/// outcome strings themselves must match (a query that breached memory
/// when recorded should still breach it now). Unreplayable records
/// (unparsable text, unknown strategy) count as replay errors, not
/// panics — a log may predate the current parser.
pub fn replay(db: &mut RdfDatabase, records: &[QueryRecord]) -> ReplayReport {
    let mut report = ReplayReport { total: records.len(), ..ReplayReport::default() };
    for rec in records {
        let mut entry = ReplayEntry {
            seq: rec.seq,
            fingerprint: rec.fingerprint.clone(),
            strategy: rec.strategy.clone(),
            recorded_outcome: rec.outcome.clone(),
            replayed_outcome: None,
            recorded_rows: rec.rows,
            replayed_rows: None,
            rows_match: false,
            recorded_eval_ns: rec.eval_ns,
            replayed_eval_ns: None,
            recorded_max_q_error: rec.max_q_error,
            replayed_max_q_error: None,
            error: None,
        };
        let replayed = db
            .parse_query(&rec.query)
            .map_err(|e| format!("parse: {e}"))
            .and_then(|q| strategy_for(rec, &q).map(|s| (q, s)))
            .map(|(q, strategy)| db.answer_recorded(&q, &strategy).1);
        match replayed {
            Err(e) => {
                entry.error = Some(e);
                report.replay_errors += 1;
            }
            Ok(None) => {
                // An empty-body query produces no record; treat it as a
                // clean empty replay.
                entry.replayed_outcome = Some("ok".to_owned());
                entry.replayed_rows = Some(0);
                entry.replayed_eval_ns = Some(0);
                entry.rows_match = rec.outcome == "ok" && rec.rows == 0;
            }
            Ok(Some(new)) => {
                entry.rows_match = match (rec.outcome.as_str(), new.outcome.as_str()) {
                    ("ok", "ok") => rec.rows == new.rows,
                    (a, b) => a == b,
                };
                entry.replayed_outcome = Some(new.outcome);
                entry.replayed_rows = Some(new.rows);
                entry.replayed_eval_ns = Some(new.eval_ns);
                entry.replayed_max_q_error = new.max_q_error;
            }
        }
        if entry.error.is_none() && !entry.rows_match {
            if entry.replayed_outcome.as_deref() == Some(entry.recorded_outcome.as_str()) {
                report.row_mismatches += 1;
            } else {
                report.outcome_mismatches += 1;
            }
        }
        report.entries.push(entry);
    }
    let recorded: Vec<u64> = report
        .entries
        .iter()
        .filter(|e| e.recorded_outcome == "ok")
        .map(|e| e.recorded_eval_ns)
        .collect();
    let replayed: Vec<u64> = report
        .entries
        .iter()
        .filter(|e| e.replayed_outcome.as_deref() == Some("ok"))
        .filter_map(|e| e.replayed_eval_ns)
        .collect();
    report.recorded_latency = LatencyPercentiles::of(&recorded);
    report.replayed_latency = LatencyPercentiles::of(&replayed);
    let drifts: Vec<f64> = report
        .entries
        .iter()
        .filter_map(|e| Some((e.recorded_max_q_error?, e.replayed_max_q_error?)))
        .map(|(a, b)| (b - a).abs())
        .filter(|d| d.is_finite())
        .collect();
    if !drifts.is_empty() {
        report.max_q_error_drift = drifts.iter().copied().reduce(f64::max);
        report.mean_q_error_drift = Some(drifts.iter().sum::<f64>() / drifts.len() as f64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let p = LatencyPercentiles::of(&samples);
        assert_eq!(p, LatencyPercentiles { p50: 50, p95: 95, p99: 99 });
        assert_eq!(LatencyPercentiles::of(&[7]), LatencyPercentiles { p50: 7, p95: 7, p99: 7 });
        assert_eq!(LatencyPercentiles::of(&[]), LatencyPercentiles::default());
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = ReplayReport {
            total: 1,
            entries: vec![ReplayEntry {
                seq: 1,
                fingerprint: "abc".into(),
                strategy: "UCQ".into(),
                recorded_outcome: "ok".into(),
                replayed_outcome: Some("ok".into()),
                recorded_rows: 3,
                replayed_rows: Some(3),
                rows_match: true,
                recorded_eval_ns: 1000,
                replayed_eval_ns: Some(1100),
                recorded_max_q_error: Some(2.0),
                replayed_max_q_error: Some(2.5),
                error: None,
            }],
            ..ReplayReport::default()
        };
        let text = report.to_json();
        let doc = jucq_obs::json::parse(&text).expect("valid JSON");
        use jucq_obs::json::Value;
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("jucq-replay/1"));
        assert_eq!(doc.get("total").and_then(Value::as_u64), Some(1));
        let deltas = doc.get("latency_delta_ns").expect("deltas");
        assert!(deltas.get("p50").and_then(Value::as_f64).is_some());
        let entries = doc.get("entries").and_then(Value::as_arr).expect("entries");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("rows_match").and_then(Value::as_bool), Some(true));
    }
}
