//! # jucq-core — reformulation-based RDF query answering, optimized
//!
//! The public facade of the `jucq` workspace: everything needed to
//! reproduce *Optimizing Reformulation-based Query Answering in RDF*
//! (Bursztyn, Goasdoué, Manolescu; EDBT 2015) end to end.
//!
//! ```
//! use jucq_core::{CostSource, RdfDatabase, Strategy};
//!
//! let mut db = RdfDatabase::new();
//! db.load_turtle(r#"
//!     @prefix ex: <http://example.org/> .
//!     ex:Book rdfs:subClassOf ex:Publication .
//!     ex:writtenBy rdfs:domain ex:Book .
//!     ex:doi1 ex:writtenBy ex:author1 .
//! "#).unwrap();
//! let q = db.parse_query(
//!     "SELECT ?x WHERE { ?x rdf:type <http://example.org/Publication> . }",
//! ).unwrap();
//! let report = db.answer(&q, &Strategy::gcov_default()).unwrap();
//! assert_eq!(report.rows.len(), 1); // doi1, via the domain constraint
//! ```
//!
//! Modules:
//! * [`database`] — [`RdfDatabase`]: graph + schema closure + the two
//!   engine-backed stores (plain and saturated);
//! * [`strategy`] — the answering strategies compared throughout the
//!   paper's Section 5: saturation, UCQ, SCQ, ECov/GCov JUCQs, fixed
//!   covers;
//! * [`parser`] — a SPARQL-BGP subset parser (`SELECT … WHERE { … }`);
//! * [`telemetry`] — the workload telemetry pipeline: query-log record
//!   construction and the `jucq replay` regression harness;
//! * [`turtle`] — a Turtle-subset loader for examples and tests.

#![warn(missing_docs)]

pub mod advisor;
pub mod database;
pub mod parser;
pub mod plan_cache;
pub mod serving;
pub mod snapshot;
pub mod strategy;
pub mod telemetry;
pub mod turtle;

pub use advisor::{advise, AdvisorReport, ViewAdvice};
pub use database::UpdateReport;
pub use database::{AnswerError, AnswerReport, EncodingMode, RdfDatabase};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use serving::{PinError, ServingDb, Snapshot};
pub use strategy::{CostSource, Strategy};
pub use telemetry::{replay, LatencyPercentiles, ReplayEntry, ReplayReport};

// Re-export the lower layers so downstream users need a single
// dependency.
pub use jucq_model as model;
pub use jucq_optimizer as optimizer;
pub use jucq_reformulation as reformulation;
pub use jucq_store as store;

/// Serializes tests that poke the process-global jucq-obs state.
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
