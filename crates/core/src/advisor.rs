//! The workload-driven view advisor: turn a structured query log into
//! a set of cover fragments worth materializing.
//!
//! The query log (`jucq-log/3`, see [`jucq_obs::record`]) profiles
//! every answered query per plan node, so for each executed fragment we
//! know both its measured evaluation time (`fragment[i].union`
//! inclusive wall time) and its measured result size (the node's actual
//! rows — exactly the tuple count a materialized view of that fragment
//! would hold). The advisor aggregates those observations per
//! (query, strategy, fragment), then greedily picks the candidates with
//! the best *benefit per stored tuple* until the catalog's tuple budget
//! is full — the same shape as the classic view-selection knapsack,
//! with measured instead of estimated quantities.
//!
//! The output is advisory: each [`ViewAdvice`] names the normalized
//! query text, the strategy, and the fragment index to pass to
//! [`crate::RdfDatabase::pin_cover_fragments`] (or
//! [`crate::ServingDb::pin_views`], which pins every fragment of the
//! query). Fragment indices refer to the cover the strategy chooses; a
//! database whose data (and therefore cover choice) has drifted far
//! from the logged workload may pin different fragments than the log
//! measured — harmless, since pinned views are consulted by signature
//! and never change answers.

use jucq_model::FxHashMap;
use jucq_obs::record::QueryRecord;

/// One recommended materialization: a fragment of one query's cover.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewAdvice {
    /// Normalized SPARQL text, re-parseable against the database.
    pub query: String,
    /// Strategy short name (`UCQ`, `GCov`, …) the workload ran under.
    pub strategy: String,
    /// The recorded cover (atom-index fragments), when the strategy was
    /// `Cover` — needed to rebuild the exact `FixedCover`.
    pub cover: Option<Vec<Vec<u64>>>,
    /// Fragment index within the query's planned cover.
    pub fragment: usize,
    /// Measured result size of the fragment — the tuples a view of it
    /// would occupy in the catalog budget.
    pub est_tuples: u64,
    /// Summed measured evaluation time of the fragment across the
    /// workload, nanoseconds — the time a view hit would save.
    pub benefit_ns: u64,
    /// How many logged executions contributed to `benefit_ns`.
    pub executions: u64,
}

/// The advisor's output: the picked advice plus accounting.
#[derive(Debug, Clone, Default)]
pub struct AdvisorReport {
    /// Picked fragments, in greedy (best benefit-per-tuple first) order.
    pub advice: Vec<ViewAdvice>,
    /// Distinct (query, strategy, fragment) candidates considered.
    pub considered: usize,
    /// The tuple budget the picks were fitted under.
    pub budget_tuples: usize,
    /// Tuples the picked views would occupy, summed.
    pub est_total_tuples: u64,
}

/// Parse a profiled node label of the form `fragment[<i>].union` or
/// `fragment[<i>].view_scan` into its fragment index.
fn fragment_index(label: &str) -> Option<usize> {
    let rest = label.strip_prefix("fragment[")?;
    let (idx, tail) = rest.split_once(']')?;
    match tail {
        ".union" | ".view_scan" => idx.parse().ok(),
        _ => None,
    }
}

#[derive(Default)]
struct Candidate {
    query: String,
    strategy: String,
    cover: Option<Vec<Vec<u64>>>,
    benefit_ns: u64,
    tuples: u64,
    executions: u64,
}

/// Aggregate `records` and greedily pick the fragments with the best
/// benefit-per-stored-tuple under `budget_tuples`.
///
/// Only successful (`outcome == "ok"`), profiled, non-saturation
/// records contribute: saturation plans have no cover fragments to
/// materialize, and failed runs have no trustworthy measurements.
/// Zero-benefit candidates are never picked.
pub fn advise(records: &[QueryRecord], budget_tuples: usize) -> AdvisorReport {
    let mut candidates: FxHashMap<(String, String, usize), Candidate> = FxHashMap::default();
    for rec in records {
        if rec.outcome != "ok" || rec.strategy == "SAT" {
            continue;
        }
        for node in &rec.nodes {
            let Some(idx) = fragment_index(&node.label) else {
                continue;
            };
            let key = (rec.fingerprint.clone(), rec.strategy.clone(), idx);
            let c = candidates.entry(key).or_default();
            // Keep the latest text/cover — fingerprint-equal queries
            // are isomorphic, any representative re-parses to the same
            // canonical plan.
            c.query = rec.query.clone();
            c.strategy = rec.strategy.clone();
            c.cover = rec.cover.clone();
            c.benefit_ns = c.benefit_ns.saturating_add(node.elapsed_ns);
            // Result sizes can drift across the workload (updates
            // land mid-log); budget for the largest observed.
            c.tuples = c.tuples.max(node.actual_rows);
            c.executions += 1;
        }
    }

    let considered = candidates.len();
    let mut picks: Vec<((String, String, usize), Candidate)> =
        candidates.into_iter().filter(|(_, c)| c.benefit_ns > 0).collect();
    // Benefit per stored tuple, descending; cross-multiplied to stay in
    // integers (`a.benefit/a.tuples > b.benefit/b.tuples` ⇔
    // `a.benefit·b.tuples > b.benefit·a.tuples` with tuples ≥ 1).
    picks.sort_by(|(ka, a), (kb, b)| {
        let lhs = a.benefit_ns as u128 * b.tuples.max(1) as u128;
        let rhs = b.benefit_ns as u128 * a.tuples.max(1) as u128;
        rhs.cmp(&lhs).then_with(|| ka.cmp(kb))
    });

    let mut report = AdvisorReport { budget_tuples, considered, ..AdvisorReport::default() };
    for ((_, _, fragment), c) in picks {
        if report.est_total_tuples.saturating_add(c.tuples) > budget_tuples as u64 {
            continue; // greedy knapsack: smaller later candidates may still fit
        }
        report.est_total_tuples += c.tuples;
        report.advice.push(ViewAdvice {
            query: c.query,
            strategy: c.strategy,
            cover: c.cover,
            fragment,
            est_tuples: c.tuples,
            benefit_ns: c.benefit_ns,
            executions: c.executions,
        });
    }
    report
}

/// Render an [`AdvisorReport`] as a human-readable table (the body of
/// `jucq advise`).
pub fn render(report: &AdvisorReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "view advisor: {} candidate fragment(s), budget {} tuples",
        report.considered, report.budget_tuples
    );
    if report.advice.is_empty() {
        out.push_str("nothing to pin (no profiled, repeated fragment work in the log)\n");
        return out;
    }
    for (i, a) in report.advice.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{:<2} {:>10} tuples  {:>9.3} ms saved  {:>4} run(s)  {} fragment[{}]\n    {}",
            i + 1,
            a.est_tuples,
            a.benefit_ns as f64 / 1e6,
            a.executions,
            a.strategy,
            a.fragment,
            a.query
        );
    }
    let _ = writeln!(
        out,
        "total: {} of {} budget tuples across {} view(s)",
        report.est_total_tuples,
        report.budget_tuples,
        report.advice.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_obs::record::NodeRecord;

    fn rec(
        fingerprint: &str,
        strategy: &str,
        outcome: &str,
        nodes: Vec<(&str, u64, u64)>,
    ) -> QueryRecord {
        QueryRecord {
            query: format!("SELECT ?x WHERE {{ ?x <p-{fingerprint}> ?y . }}"),
            fingerprint: fingerprint.into(),
            strategy: strategy.into(),
            outcome: outcome.into(),
            nodes: nodes
                .into_iter()
                .map(|(label, rows, ns)| NodeRecord {
                    label: label.into(),
                    est_rows: None,
                    actual_rows: rows,
                    elapsed_ns: ns,
                    q_error: None,
                })
                .collect(),
            ..QueryRecord::default()
        }
    }

    #[test]
    fn advisor_prefers_benefit_per_tuple_and_respects_the_budget() {
        let log = vec![
            // Hot fragment: small result, big repeated cost.
            rec("qa", "UCQ", "ok", vec![("fragment[0].union", 100, 5_000_000)]),
            rec("qa", "UCQ", "ok", vec![("fragment[0].union", 100, 5_000_000)]),
            // Big fragment: would not fit together with qa under 600.
            rec("qb", "GCov", "ok", vec![("fragment[0].union", 550, 8_000_000)]),
            // Cheap fragment: fits in the leftover budget.
            rec("qc", "UCQ", "ok", vec![("fragment[0].union", 50, 1_000_000)]),
            // Failed and saturated runs never contribute.
            rec("qd", "UCQ", "deadline", vec![("fragment[0].union", 10, 9_000_000)]),
            rec("qe", "SAT", "ok", vec![("fragment[0].union", 10, 9_000_000)]),
        ];
        let report = advise(&log, 600);
        assert_eq!(report.considered, 3);
        let picked: Vec<(&str, usize)> =
            report.advice.iter().map(|a| (a.strategy.as_str(), a.fragment)).collect();
        // qa: 10M/100 = 100k ns per tuple; qc: 1M/50 = 20k; qb: 8M/550 ≈ 14.5k.
        // Greedy takes qa (100), skips qb (550 would breach 600-100=500),
        // then takes qc (50).
        assert_eq!(picked, vec![("UCQ", 0), ("UCQ", 0)]);
        assert_eq!(report.advice[0].benefit_ns, 10_000_000);
        assert_eq!(report.advice[0].executions, 2);
        assert_eq!(report.advice[1].est_tuples, 50);
        assert_eq!(report.est_total_tuples, 150);
    }

    #[test]
    fn fragment_labels_parse_and_others_are_ignored() {
        assert_eq!(fragment_index("fragment[0].union"), Some(0));
        assert_eq!(fragment_index("fragment[12].view_scan"), Some(12));
        assert_eq!(fragment_index("fragment[0].sip_filter"), None);
        assert_eq!(fragment_index("shared_scan[0]"), None);
        assert_eq!(fragment_index("dedup"), None);
        assert_eq!(fragment_index("join[1].hash"), None);
    }

    #[test]
    fn multi_fragment_queries_yield_independent_candidates() {
        let log = vec![rec(
            "qm",
            "GCov",
            "ok",
            vec![
                ("fragment[0].union", 10, 4_000_000),
                ("fragment[1].union", 1_000_000, 1_000),
                ("dedup", 10, 50),
            ],
        )];
        let report = advise(&log, 100);
        // Only fragment 0 fits the budget; fragment 1 is a candidate
        // but far too large.
        assert_eq!(report.considered, 2);
        assert_eq!(report.advice.len(), 1);
        assert_eq!(report.advice[0].fragment, 0);
    }
}
