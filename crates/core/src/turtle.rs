//! A Turtle-subset loader for examples, tests and generated datasets.
//!
//! Supported:
//!
//! ```text
//! @prefix ex: <http://example.org/> .
//! <http://a> <http://p> <http://b> .
//! ex:s ex:p "a literal" .
//! ex:s a ex:Class .          # `a` = rdf:type
//! _:b1 ex:p ex:o .           # blank nodes
//! ```
//!
//! One triple per statement (no `;`/`,` abbreviations), `#` comments.

use std::fmt;

use jucq_model::{vocab, FxHashMap, Graph, Term, Triple};

/// A load failure, with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "turtle error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TurtleError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TurtleError> {
    Err(TurtleError { line, message: message.into() })
}

/// Split one logical statement into up to three term tokens (plus the
/// trailing `.`), respecting quotes and angle brackets.
fn statement_tokens(line: usize, stmt: &str) -> Result<Vec<String>, TurtleError> {
    let mut tokens = Vec::new();
    let mut chars = stmt.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some(ch) => iri.push(ch),
                        None => return err(line, "unterminated IRI"),
                    }
                }
                tokens.push(format!("<{iri}>"));
            }
            '"' => {
                chars.next();
                let mut lit = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => lit.push(e),
                            None => return err(line, "unterminated escape"),
                        },
                        Some(ch) => lit.push(ch),
                        None => return err(line, "unterminated literal"),
                    }
                }
                tokens.push(format!("\"{lit}\""));
            }
            _ => {
                let mut word = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '<' || ch == '"' {
                        break;
                    }
                    word.push(ch);
                    chars.next();
                }
                if !word.is_empty() {
                    tokens.push(word);
                }
            }
        }
    }
    Ok(tokens)
}

fn resolve_term(
    line: usize,
    token: &str,
    prefixes: &FxHashMap<String, String>,
) -> Result<Term, TurtleError> {
    if token == "a" {
        return Ok(Term::uri(vocab::RDF_TYPE));
    }
    if let Some(iri) = token.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
        return Ok(Term::uri(iri));
    }
    if let Some(lit) = token.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(Term::literal(lit));
    }
    if let Some(label) = token.strip_prefix("_:") {
        return Ok(Term::blank(label));
    }
    if let Some((prefix, local)) = token.split_once(':') {
        if let Some(base) = prefixes.get(prefix) {
            return Ok(Term::uri(format!("{base}{local}")));
        }
        return err(line, format!("unknown prefix `{prefix}:`"));
    }
    err(line, format!("cannot parse term `{token}`"))
}

/// Serialize a graph (schema + data) to the Turtle subset this module
/// loads; [`load`] of the output reproduces the graph exactly.
pub fn write(graph: &Graph) -> String {
    let mut out = String::new();
    let dict = graph.dict();
    let term = |t: &Term| t.to_string();
    // Schema constraints first.
    let schema = graph.schema();
    let pairs: [(&str, &Vec<(jucq_model::TermId, jucq_model::TermId)>); 4] = [
        (vocab::RDFS_SUBCLASS_OF, &schema.subclass),
        (vocab::RDFS_SUBPROPERTY_OF, &schema.subproperty),
        (vocab::RDFS_DOMAIN, &schema.domain),
        (vocab::RDFS_RANGE, &schema.range),
    ];
    for (p, list) in pairs {
        for &(s, o) in list {
            out.push_str(&format!(
                "{} <{}> {} .
",
                term(&dict.decode(s)),
                p,
                term(&dict.decode(o))
            ));
        }
    }
    for t in graph.data() {
        let decoded = graph.decode(t);
        out.push_str(&format!(
            "{} {} {} .
",
            term(&decoded.s),
            term(&decoded.p),
            term(&decoded.o)
        ));
    }
    out
}

/// Load `text` into `graph`, returning the number of (new) triples
/// inserted.
pub fn load(graph: &mut Graph, text: &str) -> Result<usize, TurtleError> {
    let mut prefixes: FxHashMap<String, String> = FxHashMap::default();
    prefixes.insert("rdf".into(), "http://www.w3.org/1999/02/22-rdf-syntax-ns#".into());
    prefixes.insert("rdfs".into(), "http://www.w3.org/2000/01/rdf-schema#".into());
    let mut inserted = 0usize;

    for (i, raw_line) in text.lines().enumerate() {
        let line = i + 1;
        let stmt = match raw_line.find('#') {
            // Only strip comments not inside quotes/IRIs — a heuristic
            // adequate for generated data: treat '#' as a comment only
            // when preceded by whitespace or at line start.
            Some(pos)
                if raw_line[..pos].chars().filter(|&c| c == '"').count() % 2 == 0
                    && raw_line[..pos].matches('<').count()
                        == raw_line[..pos].matches('>').count()
                    && (pos == 0 || raw_line[..pos].ends_with(char::is_whitespace)) =>
            {
                &raw_line[..pos]
            }
            _ => raw_line,
        };
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let stmt = stmt.strip_suffix('.').unwrap_or(stmt).trim();
        if stmt.is_empty() {
            continue;
        }
        let tokens = statement_tokens(line, stmt)?;
        if tokens.first().is_some_and(|t| t.eq_ignore_ascii_case("@prefix")) {
            let [_, name, iri] = tokens.as_slice() else {
                return err(line, "@prefix needs a name and an IRI");
            };
            let Some(name) = name.strip_suffix(':') else {
                return err(line, format!("prefix `{name}` must end with `:`"));
            };
            let Some(iri) = iri.strip_prefix('<').and_then(|t| t.strip_suffix('>')) else {
                return err(line, format!("prefix IRI `{iri}` must be `<…>`"));
            };
            prefixes.insert(name.to_owned(), iri.to_owned());
            continue;
        }
        let [s, p, o] = tokens.as_slice() else {
            return err(line, format!("expected 3 terms, found {}", tokens.len()));
        };
        let triple = Triple::new(
            resolve_term(line, s, &prefixes)?,
            resolve_term(line, p, &prefixes)?,
            resolve_term(line, o, &prefixes)?,
        );
        if triple.p.is_literal() || triple.p.is_blank() {
            return err(line, "property must be an IRI");
        }
        if graph.insert(&triple) {
            inserted += 1;
        }
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_basic_triples() {
        let mut g = Graph::new();
        let n = load(
            &mut g,
            r#"
            @prefix ex: <http://example.org/> .
            ex:s ex:p ex:o .
            <http://a> <http://p> "lit with spaces" .
            _:b1 ex:p ex:o .
            ex:s a ex:Class .
            "#,
        )
        .unwrap();
        assert_eq!(n, 4);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn schema_statements_route_to_schema() {
        let mut g = Graph::new();
        load(
            &mut g,
            "@prefix ex: <http://example.org/> .\nex:A rdfs:subClassOf ex:B .\nex:x a ex:A .",
        )
        .unwrap();
        assert_eq!(g.schema().subclass.len(), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn duplicate_triples_not_double_counted() {
        let mut g = Graph::new();
        let n =
            load(&mut g, "<http://a> <http://p> <http://b> .\n<http://a> <http://p> <http://b> .")
                .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let mut g = Graph::new();
        let n =
            load(&mut g, "# a comment\n\n<http://a> <http://p> <http://b> . # trailing\n").unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut g = Graph::new();
        let e = load(&mut g, "\n\n<http://a> <http://p> .").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("3 terms"));
    }

    #[test]
    fn literal_property_rejected() {
        let mut g = Graph::new();
        let e = load(&mut g, "<http://a> \"p\" <http://b> .").unwrap_err();
        assert!(e.message.contains("IRI"));
    }

    #[test]
    fn unknown_prefix_rejected() {
        let mut g = Graph::new();
        let e = load(&mut g, "zz:a <http://p> <http://b> .").unwrap_err();
        assert!(e.message.contains("unknown prefix"));
    }

    #[test]
    fn write_load_round_trip() {
        let mut g = Graph::new();
        load(
            &mut g,
            r#"
            @prefix ex: <http://example.org/> .
            ex:Book rdfs:subClassOf ex:Publication .
            ex:writtenBy rdfs:domain ex:Book .
            ex:doi1 ex:writtenBy _:b1 .
            ex:doi1 ex:hasTitle "Game of Thrones" .
            ex:doi1 a ex:Book .
            "#,
        )
        .unwrap();
        let text = write(&g);
        let mut g2 = Graph::new();
        load(&mut g2, &text).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.schema().len(), g2.schema().len());
        // Semantically identical: every decoded triple matches.
        let decode_all = |g: &Graph| {
            let mut v: Vec<String> = g.data().iter().map(|t| g.decode(t).to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(decode_all(&g), decode_all(&g2));
    }

    #[test]
    fn write_escapes_literals() {
        let mut g = Graph::new();
        load(&mut g, r#"<http://a> <http://p> "with \"quotes\" inside" ."#).unwrap();
        let text = write(&g);
        let mut g2 = Graph::new();
        load(&mut g2, &text).unwrap();
        assert_eq!(g2.len(), 1);
        let lit = g2.decode(&g2.data()[0]).o;
        assert_eq!(lit, Term::literal(r#"with "quotes" inside"#));
    }

    #[test]
    fn hash_inside_iri_is_not_a_comment() {
        let mut g = Graph::new();
        let n = load(&mut g, "<http://a#frag> <http://p> <http://b> .").unwrap();
        assert_eq!(n, 1);
        assert!(g.dict().lookup(&Term::uri("http://a#frag")).is_some());
    }
}
