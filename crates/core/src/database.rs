//! The `RdfDatabase` facade.
//!
//! Owns the RDF graph (dictionary + schema + data), lazily prepares the
//! two engine-backed stores the paper compares —
//!
//! * the **plain store** (explicit data + materialized closed schema),
//!   targeted by reformulation-based answering, and
//! * the **saturated store** (`G∞` + the same schema triples), targeted
//!   by saturation-based answering —
//!
//! and dispatches [`Strategy`]s over them, reporting the measurements
//! the paper's experiments record (planning vs. evaluation time, union
//! terms, covers explored).

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use jucq_model::{Graph, SchemaClosure, Term, TermId, Triple};
use jucq_optimizer::{
    calibrate, ecov, gcov, CostConstants, CoverSearch, EngineCostModel, JucqCostEstimator,
    PaperCostModel,
};
use jucq_reformulation::cover::CoverError;
use jucq_reformulation::incremental::IncrementalSaturation;
use jucq_reformulation::jucq::jucq_for_cover_bounded;
use jucq_reformulation::reformulate::ReformulationEnv;
use jucq_reformulation::saturation::{saturate, schema_triples};
use jucq_reformulation::{BgpQuery, Cover};
use jucq_store::exec::Counters;
use jucq_store::{
    DeltaFootprint, EngineError, EngineProfile, Relation, Store, StoreJucq, ViewCatalog,
    ViewCatalogStats, ViewFootprint, ViewSignature, ViewSource,
};

use crate::strategy::{CostSource, Strategy};

/// Failures surfaced by [`RdfDatabase::answer`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerError {
    /// The engine refused or aborted the evaluation (the paper's
    /// missing bars).
    Engine(EngineError),
    /// The query admits no valid cover of the requested shape (e.g. a
    /// cartesian-product body asked for a single-fragment cover).
    Cover(CoverError),
}

impl fmt::Display for AnswerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerError::Engine(e) => write!(f, "engine: {e}"),
            AnswerError::Cover(e) => write!(f, "cover: {e}"),
        }
    }
}

impl std::error::Error for AnswerError {}

impl From<EngineError> for AnswerError {
    fn from(e: EngineError) -> Self {
        AnswerError::Engine(e)
    }
}

impl From<CoverError> for AnswerError {
    fn from(e: CoverError) -> Self {
        AnswerError::Cover(e)
    }
}

/// How the database's dictionary assigns ids to URIs.
///
/// With [`EncodingMode::Hierarchical`], class and property ids are
/// re-assigned by DFS interval labeling over the `rdfs:subClassOf` /
/// `rdfs:subPropertyOf` DAGs (see [`jucq_model::encoding`]) before the
/// first query-facing id escapes, so a class subtree occupies one
/// contiguous id block and the planner's range-collapse pass can turn
/// reformulation unions over it into single interval scans.
///
/// The re-encoding runs at the first of [`RdfDatabase::prepare`],
/// [`RdfDatabase::parse_query`], [`RdfDatabase::intern_uri`] or
/// [`RdfDatabase::intern_term`] — and runs **again** after any schema
/// insertion (a new `subClassOf`/`subPropertyOf` edge changes the
/// interval labeling), so `descendant_range` intervals never go stale.
/// Queries parsed before a re-encoding must be re-parsed: their
/// constants hold pre-remap ids. Plain *data* terms interned between
/// re-encodings get append ids and stay outside every interval until
/// the next schema change (correctness is unaffected — the collapse
/// pass only merges constants whose ids happen to be contiguous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingMode {
    /// First-seen append order (the default).
    #[default]
    Plain,
    /// Hierarchy-aware interval labeling of classes and properties.
    Hierarchical,
}

/// The outcome of a data update (see
/// [`RdfDatabase::apply_data_updates`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// New explicit triples inserted.
    pub inserted: usize,
    /// Explicit triples removed.
    pub deleted: usize,
    /// Entailed triples added to the saturation (beyond the explicit).
    pub entailed_added: usize,
    /// Entailed triples dropped from the saturation.
    pub entailed_removed: usize,
    /// True iff the stores were maintained in place (no rebuild).
    pub incremental: bool,
}

/// The outcome of answering one query under one strategy.
#[derive(Debug, Clone)]
pub struct AnswerReport {
    /// Strategy short name (`SAT`, `UCQ`, `SCQ`, `ECov`, `GCov`,
    /// `Cover`).
    pub strategy: &'static str,
    /// The deduplicated answer relation (columns = the query head).
    pub rows: Relation,
    /// Executor work counters.
    pub counters: Counters,
    /// Time spent evaluating the final (reformulated) query.
    pub eval_time: Duration,
    /// Time spent reformulating and searching covers.
    pub planning_time: Duration,
    /// Union terms in the evaluated query (the paper's `|q_ref|` for
    /// UCQ; summed over fragments otherwise; 1 for saturation).
    pub union_terms: usize,
    /// The cover used, when the strategy is cover-based.
    pub cover: Option<Cover>,
    /// Covers explored by the search, when one ran.
    pub covers_explored: Option<usize>,
    /// Fragments whose union members contained at least one
    /// consecutive-id run the planner *could* collapse into a
    /// [`RangeScan`](jucq_store::PlanNode) — detected even when the
    /// profile's `range_scans` knob is off, so the query log can report
    /// missed opportunities.
    pub range_eligible: usize,
    /// `RangeScan` nodes actually present in the executed plan (0 when
    /// the knob is off or nothing was contiguous).
    pub range_scans_planned: usize,
    /// Materialized fragment views resident in the catalog when this
    /// answer ran (0 when no catalog is enabled). Epoch-exact view
    /// *resolutions* are in [`Counters::view_hits`].
    pub view_catalog_size: usize,
}

/// Everything one answer needs besides the query: closure, stores,
/// constants. `Clone` + `Arc` so the serving layer can pin an epoch's
/// preparation in an immutable snapshot while the writer builds the
/// next one copy-on-write ([`Arc::make_mut`]).
#[derive(Clone)]
pub(crate) struct Prepared {
    pub(crate) closure: SchemaClosure,
    pub(crate) rdf_type: TermId,
    pub(crate) plain: Store,
    pub(crate) saturated: Store,
    pub(crate) constants: CostConstants,
    /// The saturation under counting-based maintenance, enabling
    /// incremental data updates (see [`RdfDatabase::apply_data_updates`]).
    pub(crate) incremental: IncrementalSaturation,
    /// The materialized closed-schema triples (shared by both stores).
    pub(crate) schema_triples: Vec<jucq_model::TripleId>,
}

/// The immutable ingredients one answer needs besides the query: the
/// prepared stores, the engine profile, and (optionally) the shared
/// plan cache and a per-request execution-limit override. Borrowed
/// from `&mut RdfDatabase` on the classic path and from a pinned
/// [`crate::serving::Snapshot`] on the serving path — the pipeline
/// itself ([`answer_on`]) never mutates anything but the cache, which
/// sits behind its own lock.
pub(crate) struct AnswerCtx<'a> {
    pub(crate) prepared: &'a Prepared,
    pub(crate) profile: &'a EngineProfile,
    pub(crate) cache: Option<&'a Mutex<crate::plan_cache::PlanCache>>,
    /// Execution-only override (deadline / memory budget). Never part
    /// of plan identity: [`EngineProfile::plan_cache_key`] excludes
    /// those knobs, so cached plans are shared across requests with
    /// different limits.
    pub(crate) exec_profile: Option<&'a EngineProfile>,
    /// The materialized-view catalog, already gated on the profile's
    /// `view_scans` knob by the ctx builder (`None` when the knob is
    /// off or no catalog is enabled).
    pub(crate) views: Option<&'a ViewCatalog>,
    /// The epoch this answer is pinned to: the snapshot's on the
    /// serving path, the catalog's own on the classic `&mut self` path
    /// (where reads and writes are serialized anyway). View resolution
    /// is exact against this value.
    pub(crate) epoch: u64,
}

/// Lock the shared plan cache, recovering from poisoning: the cache's
/// operations keep its invariants at every await-free step, so a reader
/// that panicked mid-request must not wedge every other request.
pub(crate) fn lock_cache(
    cache: &Mutex<crate::plan_cache::PlanCache>,
) -> std::sync::MutexGuard<'_, crate::plan_cache::PlanCache> {
    cache.lock().unwrap_or_else(|e| e.into_inner())
}

/// True iff `t` is an RDFS schema statement. Schema statements change
/// the class/property hierarchies the interval labeling is computed
/// from, so inserting one obsoletes the hierarchy encoding.
fn is_schema_triple(t: &Triple) -> bool {
    matches!(&t.p, Term::Uri(p) if jucq_model::vocab::is_schema_property(p))
}

/// An RDF database answering BGP queries under RDFS constraints.
pub struct RdfDatabase {
    graph: Graph,
    profile: EngineProfile,
    constants: Option<CostConstants>,
    prepared: Option<Arc<Prepared>>,
    plan_cache: Option<Arc<Mutex<crate::plan_cache::PlanCache>>>,
    /// The materialized fragment-view catalog, when enabled
    /// ([`RdfDatabase::enable_views`]). `Arc`-shared with serving
    /// snapshots; all mutation goes through interior locking.
    views: Option<Arc<ViewCatalog>>,
    encoding: EncodingMode,
    /// Whether the hierarchy-aware re-encoding is current. Reset when
    /// the schema grows (a new `subClassOf` edge changes the interval
    /// labeling), so the next preparation re-runs the encoding; callers
    /// must re-parse queries afterwards (constants interned before a
    /// re-encoding hold pre-remap ids).
    encoded: bool,
}

impl Default for RdfDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl RdfDatabase {
    /// An empty database with the default (PostgreSQL-like) profile.
    pub fn new() -> Self {
        Self::with_profile(EngineProfile::pg_like())
    }

    /// An empty database with a specific engine profile.
    pub fn with_profile(profile: EngineProfile) -> Self {
        RdfDatabase {
            graph: Graph::new(),
            profile,
            constants: None,
            prepared: None,
            plan_cache: None,
            views: None,
            encoding: EncodingMode::Plain,
            encoded: false,
        }
    }

    /// Wrap an existing graph.
    pub fn from_graph(graph: Graph, profile: EngineProfile) -> Self {
        RdfDatabase {
            graph,
            profile,
            constants: None,
            prepared: None,
            plan_cache: None,
            views: None,
            encoding: EncodingMode::Plain,
            encoded: false,
        }
    }

    /// Select the dictionary [`EncodingMode`]. Call before the first
    /// query-facing operation; switching modes invalidates prepared
    /// stores (and, when switching *to* hierarchical after an earlier
    /// re-encoding, re-runs the labeling over the current schema).
    pub fn set_encoding(&mut self, mode: EncodingMode) {
        if self.encoding != mode {
            self.encoding = mode;
            self.encoded = false;
            self.invalidate();
        }
    }

    /// Builder-style [`RdfDatabase::set_encoding`].
    pub fn with_encoding(mut self, mode: EncodingMode) -> Self {
        self.set_encoding(mode);
        self
    }

    /// The dictionary encoding mode in use.
    pub fn encoding_mode(&self) -> EncodingMode {
        self.encoding
    }

    /// The hierarchy encoding's interval table, once the re-encoding has
    /// run (`None` under [`EncodingMode::Plain`] or before first use).
    pub fn hierarchy_encoding(&self) -> Option<&jucq_model::HierarchyEncoding> {
        self.graph.encoding()
    }

    /// Run the hierarchy-aware re-encoding exactly once, before any
    /// dictionary id escapes to a caller (query constants and store
    /// triples must agree on the id space).
    fn ensure_encoded(&mut self) {
        if self.encoded || self.encoding == EncodingMode::Plain {
            return;
        }
        jucq_obs::span!("hierarchy_encoding");
        self.graph.apply_hierarchy_encoding();
        self.encoded = true;
        self.invalidate();
    }

    /// Insert one triple (invalidates prepared stores; a schema triple
    /// also obsoletes the hierarchy encoding).
    pub fn insert(&mut self, triple: &Triple) -> bool {
        self.invalidate();
        if is_schema_triple(triple) {
            self.encoded = false;
        }
        self.graph.insert(triple)
    }

    /// Bulk-insert triples (invalidates prepared stores; schema triples
    /// also obsolete the hierarchy encoding).
    pub fn extend<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        self.invalidate();
        let triples: Vec<&Triple> = triples.into_iter().collect();
        if triples.iter().any(|t| is_schema_triple(t)) {
            self.encoded = false;
        }
        self.graph.extend(triples);
    }

    /// Load a Turtle-subset document (see [`crate::turtle`]).
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, crate::turtle::TurtleError> {
        self.invalidate();
        let schema_before = self.graph.schema().len();
        let loaded = crate::turtle::load(&mut self.graph, text);
        if self.graph.schema().len() != schema_before {
            self.encoded = false;
        }
        loaded
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The engine profile in use.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Switch the engine profile (keeps data; rebuilds stores lazily
    /// with the same triples but new execution behaviour).
    ///
    /// The cost constants calibrated under the old profile are stale —
    /// they encode the old join algorithm and materialization policy —
    /// so unless they were pinned with
    /// [`RdfDatabase::set_cost_constants`] they are recalibrated
    /// against the new profile. Cached covers and physical plans are
    /// keyed by the profile's plan-affecting fingerprint (name plus
    /// join, materialization, sharing, batch and SIP knobs), so
    /// entries chosen for the old settings simply stop matching (and
    /// keep serving if the profile is switched back).
    pub fn set_profile(&mut self, profile: EngineProfile) {
        self.profile = profile.clone();
        if let Some(p) = &mut self.prepared {
            let p = Arc::make_mut(p);
            p.plain.set_profile(profile.clone());
            p.saturated.set_profile(profile);
            p.constants = self.constants.unwrap_or_else(|| calibrate(&p.plain));
        }
    }

    /// Enable cover-plan caching for the ECov/GCov strategies: repeated
    /// queries reuse the previously chosen cover instead of re-running
    /// the search. Sound across data updates (any valid cover answers
    /// correctly, Theorem 3.1); cleared when the database is re-prepared.
    ///
    /// Calling this again on a live cache **resizes** it in place —
    /// entries and hit/miss counters survive (shrinking evicts
    /// oldest-first); it never wipes a warm cache.
    pub fn enable_plan_cache(&mut self, capacity: usize) {
        match &self.plan_cache {
            Some(cache) => lock_cache(cache).resize(capacity),
            None => {
                self.plan_cache =
                    Some(Arc::new(Mutex::new(crate::plan_cache::PlanCache::new(capacity))));
            }
        }
    }

    /// The plan cache's hit/miss counters, if caching is enabled.
    pub fn plan_cache_stats(&self) -> Option<crate::plan_cache::PlanCacheStats> {
        self.plan_cache.as_ref().map(|c| lock_cache(c).stats())
    }

    /// The shared plan-cache handle, for snapshots (the cache outlives
    /// any single epoch: covers stay sound across data updates).
    pub(crate) fn plan_cache_shared(&self) -> Option<Arc<Mutex<crate::plan_cache::PlanCache>>> {
        self.plan_cache.clone()
    }

    /// Swap in a fresh plan cache of the same capacity, leaving the old
    /// handle to whoever still holds it. The serving layer calls this
    /// on a non-incremental rebuild: readers pinned to an earlier epoch
    /// may attach plans lowered from the *old* stores after the rebuild
    /// cleared the cache, and a rebuild can remap term ids (hierarchy
    /// re-encoding) — so sharing one cache across that boundary could
    /// hand a new-epoch reader a stale physical plan. A fresh handle
    /// makes the race unrepresentable; the old epoch keeps caching
    /// against its own doomed instance until it drops.
    pub(crate) fn replace_plan_cache(&mut self) {
        if let Some(cache) = &self.plan_cache {
            let capacity = lock_cache(cache).capacity();
            self.plan_cache =
                Some(Arc::new(Mutex::new(crate::plan_cache::PlanCache::new(capacity))));
        }
    }

    /// Enable the materialized fragment-view catalog with a tuple
    /// budget: cover fragments pinned through
    /// [`RdfDatabase::pin_cover_fragments`] are stored as materialized
    /// relations, the cover search prices them at `c_view` per tuple,
    /// and the planner lowers matching fragments to `ViewScan` leaves.
    /// Calling again on a live catalog replaces it (entries are
    /// re-pinned by their owners).
    pub fn enable_views(&mut self, budget_tuples: usize) {
        let epoch = self.views.as_ref().map(|c| c.epoch()).unwrap_or(0);
        let catalog = ViewCatalog::new(budget_tuples);
        catalog.set_epoch(epoch);
        self.views = Some(Arc::new(catalog));
    }

    /// The view catalog, if one is enabled.
    pub fn views(&self) -> Option<&ViewCatalog> {
        self.views.as_deref()
    }

    /// The shared catalog handle, for serving snapshots.
    pub(crate) fn views_shared(&self) -> Option<Arc<ViewCatalog>> {
        self.views.clone()
    }

    /// The catalog's aggregate statistics, if views are enabled.
    pub fn view_stats(&self) -> Option<ViewCatalogStats> {
        self.views.as_deref().map(|c| c.stats())
    }

    /// Materialize (pin) cover fragments of `q` under `strategy` into
    /// the view catalog: each selected fragment's reformulated union is
    /// evaluated once on the **plain** store — views disabled during
    /// materialization, so a view never feeds its own definition — and
    /// the result is stored under the fragment's canonical signature,
    /// stamped with the catalog's current epoch.
    ///
    /// `fragments` selects fragment indices of the chosen cover (out of
    /// range indices are ignored); `None` pins every fragment. Returns
    /// the number of fragments newly materialized — already-resident
    /// fragments and fragments the tuple budget rejects are skipped.
    /// Saturation plans have no cover fragments, so they pin nothing.
    ///
    /// Pinning invalidates cached *physical* plans (covers survive):
    /// plans lowered before the pin carry no `ViewScan` leaves and
    /// would keep evaluating the fallback unions forever.
    pub fn pin_cover_fragments(
        &mut self,
        q: &BgpQuery,
        strategy: &Strategy,
        fragments: Option<&[usize]>,
    ) -> Result<usize, AnswerError> {
        let Some(catalog) = self.views.clone() else {
            return Ok(0);
        };
        if q.is_empty() {
            return Ok(0);
        }
        self.prepare();
        let (jucq, _, _, saturated, _) = plan_jucq_on(&self.answer_ctx(), q, strategy)?;
        if saturated {
            return Ok(0);
        }
        let p = Arc::clone(self.prepared.as_ref().expect("prepared"));
        let target = &p.plain;
        let mut pinned = 0usize;
        for (i, frag) in jucq.fragments.iter().enumerate() {
            if let Some(sel) = fragments {
                if !sel.contains(&i) {
                    continue;
                }
            }
            let sig = ViewSignature::of(frag);
            if catalog.contains_current(&sig).is_some() {
                continue;
            }
            let single = StoreJucq::new(vec![frag.clone()], frag.head.clone());
            let plan = target.plan_jucq(&single)?;
            let outcome = target.eval_plan(&plan)?;
            let footprint = ViewFootprint::of(frag, p.rdf_type);
            if catalog.insert(sig, ViewSignature::body_of(frag), outcome.relation, footprint) {
                pinned += 1;
            }
        }
        if pinned > 0 {
            if let Some(cache) = &self.plan_cache {
                lock_cache(cache).clear_plans();
            }
        }
        Ok(pinned)
    }

    /// Pin the cost constants instead of calibrating.
    pub fn set_cost_constants(&mut self, constants: CostConstants) {
        self.constants = Some(constants);
        if let Some(p) = &mut self.prepared {
            Arc::make_mut(p).constants = constants;
        }
    }

    fn invalidate(&mut self) {
        self.prepared = None;
        if let Some(cache) = &self.plan_cache {
            lock_cache(cache).clear();
        }
        // A rebuild may remap term ids (hierarchy re-encoding) or change
        // the schema closure the materialized unions were derived from:
        // nothing in the catalog survives. The epoch is left for the
        // owner (the serving layer) to re-align at publish time.
        if let Some(catalog) = &self.views {
            catalog.clear();
        }
    }

    /// Build the closure, the plain store and the saturated store.
    /// Idempotent; [`RdfDatabase::answer`] calls it automatically.
    pub fn prepare(&mut self) {
        if self.prepared.is_some() {
            return;
        }
        self.ensure_encoded();
        jucq_obs::span!("prepare");
        let closure = self.graph.schema_closure();
        let rdf_type = self.graph.rdf_type();
        let schema_ts = schema_triples(&mut self.graph, &closure);

        let mut plain_triples = self.graph.data().to_vec();
        plain_triples.extend_from_slice(&schema_ts);
        plain_triples.sort_unstable();
        plain_triples.dedup();
        let plain = Store::from_triples(&plain_triples, self.profile.clone());

        let mut sat_triples = saturate(&mut self.graph);
        sat_triples.extend_from_slice(&schema_ts);
        sat_triples.sort_unstable();
        sat_triples.dedup();
        let saturated = Store::from_triples(&sat_triples, self.profile.clone());

        let incremental = IncrementalSaturation::new(self.graph.data(), closure.clone(), rdf_type);
        let constants = self.constants.unwrap_or_else(|| calibrate(&plain));
        self.prepared = Some(Arc::new(Prepared {
            closure,
            rdf_type,
            plain,
            saturated,
            constants,
            incremental,
            schema_triples: schema_ts,
        }));
    }

    /// The prepared state as a shared handle (preparing on demand) —
    /// the serving layer's snapshot ingredient. Published snapshots
    /// keep this `Arc` alive; subsequent incremental updates mutate a
    /// private copy ([`Arc::make_mut`]), never the pinned one.
    pub(crate) fn prepared_shared(&mut self) -> Arc<Prepared> {
        self.prepare();
        Arc::clone(self.prepared.as_ref().expect("prepared"))
    }

    /// True when `triple` can be absorbed without rebuilding: data-only
    /// and not introducing a class or property unknown to the closure
    /// (new vocabulary would change the instantiation rules' universe).
    fn update_is_incremental(&self, p: &Prepared, t: &jucq_model::TripleId) -> bool {
        if t.p == p.rdf_type {
            !t.o.is_uri() || p.closure.classes().contains(&t.o)
        } else {
            p.closure.properties().contains(&t.p)
        }
    }

    /// Apply a batch of data insertions and deletions.
    ///
    /// When the database is prepared and the update stays within the
    /// known vocabulary, both stores are maintained **incrementally**:
    /// the plain store by an index merge, the saturated store through
    /// the counting-based [`IncrementalSaturation`] — the maintenance
    /// cost the paper's §5.3 discussion weighs against reformulation.
    /// Schema statements or new vocabulary fall back to invalidating
    /// the preparation (rebuilt lazily on the next answer).
    pub fn apply_data_updates(&mut self, inserts: &[Triple], deletes: &[Triple]) -> UpdateReport {
        use jucq_model::{FxHashSet, TripleId};
        // Schema statements cannot be absorbed incrementally.
        let is_schema =
            |t: &Triple| matches!(&t.p, Term::Uri(p) if jucq_model::vocab::is_schema_property(p));
        if inserts.iter().chain(deletes).any(is_schema) {
            for t in deletes {
                // Schema deletion is not supported at the Graph level;
                // data deletes are handled below after invalidation.
                let _ = t;
            }
            self.extend(inserts);
            let del: Vec<TripleId> =
                deletes.iter().filter(|t| !is_schema(t)).map(|t| self.encode_triple(t)).collect();
            let del_set: FxHashSet<TripleId> = del.into_iter().collect();
            self.graph.remove_data_batch(&del_set);
            self.invalidate();
            return UpdateReport { incremental: false, ..Default::default() };
        }

        let ins_ids: Vec<TripleId> = inserts.iter().map(|t| self.encode_triple(t)).collect();
        let del_ids: Vec<TripleId> = deletes.iter().map(|t| self.encode_triple(t)).collect();

        let absorbable = match &self.prepared {
            Some(p) => ins_ids.iter().all(|t| self.update_is_incremental(p.as_ref(), t)),
            None => false,
        };
        if !absorbable {
            let mut report = UpdateReport::default();
            for &t in &ins_ids {
                if self.graph.insert_data_encoded(t) {
                    report.inserted += 1;
                }
            }
            let del_set: FxHashSet<TripleId> = del_ids.iter().copied().collect();
            report.deleted = self.graph.remove_data_batch(&del_set);
            self.invalidate();
            return report;
        }

        let mut report = UpdateReport { incremental: true, ..Default::default() };
        let mut plain_ins: Vec<TripleId> = Vec::new();
        let mut plain_del: FxHashSet<TripleId> = FxHashSet::default();
        let mut sat_ins: Vec<TripleId> = Vec::new();
        let mut sat_del: FxHashSet<TripleId> = FxHashSet::default();
        {
            // Copy-on-write: a snapshot pinning the old epoch keeps its
            // `Arc`; the writer mutates a private copy and publishes it.
            let p = Arc::make_mut(self.prepared.as_mut().expect("absorbable implies prepared"));
            for &t in &ins_ids {
                if self.graph.insert_data_encoded(t) {
                    report.inserted += 1;
                    plain_ins.push(t);
                    let delta = p.incremental.insert(t);
                    report.entailed_added += delta.added.len().saturating_sub(1);
                    sat_ins.extend(delta.added);
                }
            }
            let present: Vec<TripleId> =
                del_ids.iter().filter(|t| self.graph.contains_data(t)).copied().collect();
            let present_set: FxHashSet<TripleId> = present.iter().copied().collect();
            report.deleted = self.graph.remove_data_batch(&present_set);
            for t in &present {
                plain_del.insert(*t);
                let delta = p.incremental.delete(t);
                report.entailed_removed += delta.removed.len().saturating_sub(1);
                sat_del.extend(delta.removed);
            }
            // Schema triples are immutable here; shield them from
            // accidental deletion by the saturation delta.
            for st in &p.schema_triples {
                sat_del.remove(st);
            }
            p.plain = p.plain.apply_delta(&plain_ins, &plain_del);
            p.saturated = p.saturated.apply_delta(&sat_ins, &sat_del);

            // Advance the view catalog one epoch, dropping exactly the
            // entries whose predicate/class footprint intersects the
            // *plain-store* delta (views are materialized from the plain
            // store, so saturation-only churn cannot affect them).
            // Surviving entries are restamped to the new epoch and keep
            // serving.
            if let Some(catalog) = &self.views {
                let mut touched: Vec<TripleId> = plain_ins.clone();
                touched.extend(plain_del.iter().copied());
                let delta = DeltaFootprint::from_triples(&touched, p.rdf_type);
                let dropped = catalog.advance_epoch(catalog.epoch() + 1, &delta);
                if !dropped.is_empty() {
                    jucq_obs::metrics::counter_add("views.invalidated", dropped.len() as u64);
                }
            }
        }
        // Covers stay sound across data updates (Theorem 3.1), but the
        // physical plans lowered from them baked in join orders and
        // shared-scan choices from the old statistics snapshot.
        if let Some(cache) = &self.plan_cache {
            lock_cache(cache).clear_plans();
        }
        report
    }

    /// The ECov/GCov planning path, shared by the cached and uncached
    /// branches of [`RdfDatabase::answer`].
    #[allow(clippy::type_complexity)]
    fn run_cover_search(
        q: &BgpQuery,
        env: &ReformulationEnv<'_>,
        p: &Prepared,
        cost: &CostSource,
        strategy: &Strategy,
        limit: usize,
        views: Option<&ViewCatalog>,
    ) -> Result<(StoreJucq, Option<Cover>, Option<usize>), AnswerError> {
        let paper_model = PaperCostModel::new(p.plain.table(), p.plain.stats(), p.constants)
            .with_range_pricing(p.plain.profile().range_scans)
            .with_view_pricing(views);
        let engine_model = EngineCostModel::new(&p.plain);
        let estimator: &(dyn JucqCostEstimator + Sync) = match cost {
            CostSource::Paper => &paper_model,
            CostSource::Engine => &engine_model,
        };
        let search = CoverSearch::new(q, *env, estimator)
            .with_union_limit(limit)
            .with_parallelism(p.plain.profile().effective_parallelism());
        let result = match strategy {
            Strategy::ECov { budget, .. } => ecov(&search, *budget)?,
            Strategy::GCov { budget, max_moves, .. } => gcov(&search, *budget, *max_moves)?,
            _ => unreachable!("callers narrow to ECov/GCov"),
        };
        let jucq = jucq_for_cover_bounded(q, &result.cover, env, limit)
            .map_err(|n| AnswerError::from(EngineError::UnionTooLarge { terms: n, limit }))?;
        Ok((jucq, Some(result.cover), Some(result.explored)))
    }

    fn encode_triple(&mut self, t: &Triple) -> jucq_model::TripleId {
        self.ensure_encoded();
        let d = self.graph.dict_mut();
        let s = d.encode(&t.s);
        let p = d.encode(&t.p);
        let o = d.encode(&t.o);
        jucq_model::TripleId::new(s, p, o)
    }

    /// The plain (non-saturated) store, for direct engine access.
    pub fn plain_store(&mut self) -> &Store {
        self.prepare();
        &self.prepared.as_ref().expect("prepared").plain
    }

    /// The saturated store.
    pub fn saturated_store(&mut self) -> &Store {
        self.prepare();
        &self.prepared.as_ref().expect("prepared").saturated
    }

    /// The schema closure.
    pub fn closure(&mut self) -> &SchemaClosure {
        self.prepare();
        &self.prepared.as_ref().expect("prepared").closure
    }

    /// The dictionary id of `rdf:type`.
    pub fn rdf_type(&mut self) -> TermId {
        self.prepare();
        self.prepared.as_ref().expect("prepared").rdf_type
    }

    /// The calibrated (or pinned) cost constants.
    pub fn cost_constants(&mut self) -> CostConstants {
        self.prepare();
        self.prepared.as_ref().expect("prepared").constants
    }

    /// Parse a SPARQL-BGP query against this database's dictionary
    /// (interning constants as needed).
    pub fn parse_query(&mut self, text: &str) -> Result<BgpQuery, crate::parser::ParseError> {
        self.ensure_encoded();
        crate::parser::parse_query(self.graph.dict_mut(), text)
    }

    /// Intern a URI, for building queries programmatically. Interning
    /// does not invalidate prepared stores (ids are append-only).
    pub fn intern_uri(&mut self, uri: &str) -> TermId {
        self.ensure_encoded();
        self.graph.dict_mut().encode_uri(uri)
    }

    /// Intern any term (URI, blank, or literal), for building queries
    /// programmatically. Like [`RdfDatabase::intern_uri`], does not
    /// invalidate prepared stores.
    pub fn intern_term(&mut self, term: &Term) -> TermId {
        self.ensure_encoded();
        self.graph.dict_mut().encode(term)
    }

    /// Decode an answer relation's rows to terms, for display.
    pub fn decode_rows(&self, rows: &Relation) -> Vec<Vec<Term>> {
        rows.rows().map(|r| r.iter().map(|&id| self.graph.dict().decode(id)).collect()).collect()
    }

    /// Plan `q` under `strategy`: choose (or look up) a cover, build the
    /// reformulated JUCQ, and report which store evaluates it (`true` =
    /// the saturated store) plus the plan-cache key used (when caching
    /// applies), so [`RdfDatabase::answer`] can reuse the entry's
    /// physical plan. Shared by [`RdfDatabase::answer`] and
    /// [`RdfDatabase::explain_analyze`].
    #[allow(clippy::type_complexity)]
    fn plan_jucq(
        &mut self,
        q: &BgpQuery,
        strategy: &Strategy,
    ) -> Result<
        (StoreJucq, Option<Cover>, Option<usize>, bool, Option<crate::plan_cache::PlanKey>),
        AnswerError,
    > {
        self.prepare();
        plan_jucq_on(&self.answer_ctx(), q, strategy)
    }

    /// The borrowed pipeline inputs. Callers must [`RdfDatabase::prepare`]
    /// first.
    fn answer_ctx(&self) -> AnswerCtx<'_> {
        let views = if self.profile.view_scans { self.views.as_deref() } else { None };
        AnswerCtx {
            prepared: self.prepared.as_deref().expect("prepared"),
            profile: &self.profile,
            cache: self.plan_cache.as_deref(),
            exec_profile: None,
            views,
            epoch: views.map(|c| c.epoch()).unwrap_or(0),
        }
    }
}

/// Plan `q` under `strategy` over borrowed pipeline inputs: choose (or
/// look up) a cover, build the reformulated JUCQ, and report which
/// store evaluates it (`true` = the saturated store) plus the
/// plan-cache key used (when caching applies). The `&self`-compatible
/// planning stage shared by [`RdfDatabase`] and the serving snapshot
/// path ([`crate::serving::Snapshot`]).
#[allow(clippy::type_complexity)]
pub(crate) fn plan_jucq_on(
    ctx: &AnswerCtx<'_>,
    q: &BgpQuery,
    strategy: &Strategy,
) -> Result<
    (StoreJucq, Option<Cover>, Option<usize>, bool, Option<crate::plan_cache::PlanKey>),
    AnswerError,
> {
    let p = ctx.prepared;
    let env = ReformulationEnv { closure: &p.closure, rdf_type: p.rdf_type };

    // Reformulation is bounded by the engine's union limit: a union
    // the engine would reject is not materialized at all (the paper's
    // engines likewise fail during parsing/planning, not execution).
    let limit = ctx.profile.max_union_terms;
    let bounded = |cover: &Cover| -> Result<StoreJucq, AnswerError> {
        jucq_for_cover_bounded(q, cover, &env, limit)
            .map_err(|n| EngineError::UnionTooLarge { terms: n, limit }.into())
    };

    let mut used_key: Option<crate::plan_cache::PlanKey> = None;
    let (jucq, cover, explored, saturated): (StoreJucq, Option<Cover>, Option<usize>, bool) =
        match strategy {
            Strategy::Saturation => {
                let cq = q.to_store_cq();
                let head = q.head.clone();
                let ucq = jucq_store::StoreUcq::new(vec![cq], head.clone());
                (StoreJucq::new(vec![ucq], head), None, None, true)
            }
            // Range reformulates exactly like UCQ; the union-to-
            // interval collapse happens inside the physical planner
            // (and only when the profile's `range_scans` knob is on,
            // so with it off Range degenerates to plain UCQ).
            Strategy::Ucq | Strategy::Range => {
                let cover = Cover::single_fragment(q)?;
                (bounded(&cover)?, Some(cover), None, false)
            }
            Strategy::Scq => {
                let cover = Cover::singletons(q)?;
                (bounded(&cover)?, Some(cover), None, false)
            }
            Strategy::MinimizedUcq { cap } => {
                let cover = Cover::single_fragment(q)?;
                let mut jucq = bounded(&cover)?;
                if jucq.union_terms() <= *cap {
                    let minimized: Vec<_> = jucq
                        .fragments
                        .into_iter()
                        .map(|f| jucq_reformulation::minimize_ucq(&f))
                        .collect();
                    jucq = StoreJucq::new(minimized, jucq.head);
                }
                (jucq, Some(cover), None, false)
            }
            Strategy::FixedCover(cover) => (bounded(cover)?, Some(cover.clone()), None, false),
            Strategy::ECov { cost, .. } | Strategy::GCov { cost, .. } => {
                // Plan-cache keys are canonical query forms, so
                // isomorphic queries (same shape, different variable
                // names or atom order) share one cached cover; the
                // cover's atom indices are canonical and translated
                // through this query's permutation. The profile's
                // plan-affecting fingerprint (name plus the join,
                // materialization, sharing, batch and SIP knobs)
                // keys cost-model- and executor-dependent choices
                // apart, so toggling `JUCQ_BATCH` or `sip_filters`
                // can never serve a plan lowered for the old knobs.
                let canonical = ctx.cache.is_some().then(|| q.canonicalize());
                let cache_key = canonical.as_ref().map(|(cq, _)| {
                    crate::plan_cache::PlanKey::new(
                        cq.clone(),
                        strategy.name(),
                        &ctx.profile.plan_cache_key(),
                    )
                });
                used_key = cache_key.clone();
                if let (Some(cache), Some(key)) = (ctx.cache, &cache_key) {
                    // Hold the lock only for the lookup — a miss
                    // runs the cover search unlocked, so concurrent
                    // requests never serialize behind planning.
                    let cached = lock_cache(cache).get(key);
                    if let Some((canonical_cover, explored)) = cached {
                        let perm = &canonical.as_ref().expect("key implies canonical").1;
                        let fragments: Vec<Vec<usize>> = canonical_cover
                            .fragments()
                            .into_iter()
                            .map(|f| f.into_iter().map(|i| perm[i]).collect())
                            .collect();
                        let cover = Cover::new(q, fragments)
                            .expect("canonical covers translate to valid covers");
                        let jucq = jucq_for_cover_bounded(q, &cover, &env, limit).map_err(|n| {
                            AnswerError::from(EngineError::UnionTooLarge { terms: n, limit })
                        })?;
                        (jucq, Some(cover), explored, false)
                    } else {
                        let (jucq, cover, explored) = RdfDatabase::run_cover_search(
                            q, &env, p, cost, strategy, limit, ctx.views,
                        )?;
                        if let Some(c) = &cover {
                            // Store the cover in canonical indices.
                            let perm = &canonical.as_ref().expect("key implies canonical").1;
                            let inverse: jucq_model::FxHashMap<usize, usize> =
                                perm.iter().enumerate().map(|(ci, &oi)| (oi, ci)).collect();
                            let fragments: Vec<Vec<usize>> = c
                                .fragments()
                                .into_iter()
                                .map(|f| f.into_iter().map(|i| inverse[&i]).collect())
                                .collect();
                            let (cq, _) = canonical.as_ref().expect("canonical");
                            if let Ok(canonical_cover) = Cover::new(cq, fragments) {
                                lock_cache(cache).put(key.clone(), canonical_cover, explored);
                            }
                        }
                        (jucq, cover, explored, false)
                    }
                } else {
                    let (jucq, cover, explored) = RdfDatabase::run_cover_search(
                        q, &env, p, cost, strategy, limit, ctx.views,
                    )?;
                    (jucq, cover, explored, false)
                }
            }
        };
    Ok((jucq, cover, explored, saturated, used_key))
}

/// A zero-atom query's uniform answer: clean and empty for *every*
/// strategy. An empty body has no cover (UCQ's single fragment would be
/// empty, SCQ's cover has no fragments), and letting each strategy
/// improvise its own degenerate behaviour made them disagree. No atoms,
/// no answers — uniformly.
pub(crate) fn empty_answer(
    q: &BgpQuery,
    strategy: &Strategy,
) -> (AnswerReport, Option<jucq_store::ExecProfile>) {
    jucq_obs::metrics::counter_add("queries.answered", 1);
    (
        AnswerReport {
            strategy: strategy.name(),
            rows: Relation::empty(q.head.clone()),
            counters: Counters::default(),
            eval_time: Duration::ZERO,
            planning_time: Duration::ZERO,
            union_terms: 0,
            cover: None,
            covers_explored: None,
            range_eligible: 0,
            range_scans_planned: 0,
            view_catalog_size: 0,
        },
        None,
    )
}

/// The shared answering pipeline over borrowed inputs — the `&self`
/// core of [`RdfDatabase::answer`], also driven by the serving
/// snapshot path. Callers emit the `answer` span and short-circuit
/// zero-atom queries through [`empty_answer`] first.
pub(crate) fn answer_on(
    ctx: &AnswerCtx<'_>,
    q: &BgpQuery,
    strategy: &Strategy,
    profiled: bool,
) -> Result<(AnswerReport, Option<jucq_store::ExecProfile>), AnswerError> {
    let planning_start = Instant::now();
    let (jucq, cover, explored, saturated, cache_key) = {
        jucq_obs::span!("planning");
        plan_jucq_on(ctx, q, strategy)?
    };
    let planning_time = planning_start.elapsed();
    let p = ctx.prepared;
    let target = if saturated { &p.saturated } else { &p.plain };

    let union_terms = jucq.union_terms();
    // Reuse the cache entry's lowered physical plan when it was
    // built for exactly this query under this profile; otherwise
    // lower one and attach it for the next repetition.
    let mut exec_profile = None;
    // Views only serve the plain store (they were materialized from
    // it); a saturation plan never carries `ViewScan` leaves.
    let catalog = if saturated { None } else { ctx.views };
    let plan = match (ctx.cache, &cache_key) {
        (Some(cache), Some(key)) => {
            let cached = lock_cache(cache).get_plan(key, q);
            match cached {
                Some(plan) => plan,
                None => {
                    let plan = Arc::new(target.plan_jucq_views(&jucq, catalog)?);
                    lock_cache(cache).attach_plan(key, q.clone(), Arc::clone(&plan));
                    plan
                }
            }
        }
        _ => Arc::new(target.plan_jucq_views(&jucq, catalog)?),
    };
    let (range_eligible, range_scans_planned) = (plan.range_eligible, plan.range_scans);
    // Per-request limits (deadline, memory budget) override only the
    // execution context, never the plan: `plan_cache_key` excludes
    // them by design, so a request with a tight deadline still reuses
    // the shared plan. View resolution is pinned to the *request's*
    // epoch: a cached plan's `ViewScan` leaf serves rows only when the
    // catalog entry was computed at exactly `ctx.epoch`, and falls back
    // to its embedded union otherwise — so a racing plan-cache entry
    // can never surface another epoch's rows.
    let source = catalog.map(|c| ViewSource { catalog: c, epoch: ctx.epoch });
    let mut outcome = if profiled {
        let (outcome, profile) =
            target.eval_plan_views_profiled(&plan, ctx.exec_profile, source.as_ref())?;
        exec_profile = Some(profile);
        outcome
    } else {
        target.eval_plan_views(&plan, ctx.exec_profile, source.as_ref())?
    };
    if let Some(n) = q.limit {
        outcome.relation.truncate(n);
    }

    let c = outcome.counters;
    if c.view_hits > 0 {
        jucq_obs::metrics::counter_add("views.hits", c.view_hits);
    }
    jucq_obs::metrics::counter_add("queries.answered", 1);
    jucq_obs::metrics::counter_add("exec.tuples_scanned", c.tuples_scanned);
    jucq_obs::metrics::counter_add("exec.tuples_joined", c.tuples_joined);
    jucq_obs::metrics::counter_add("exec.tuples_materialized", c.tuples_materialized);
    jucq_obs::metrics::counter_add("exec.tuples_deduped", c.tuples_deduped);
    jucq_obs::metrics::counter_add("exec.sorts_elided", c.sorts_elided);
    jucq_obs::metrics::counter_add("exec.gallop_seeks", c.gallop_seeks);
    jucq_obs::metrics::counter_add("exec.scan_rows_borrowed", c.scan_rows_borrowed);
    jucq_obs::metrics::histogram_record("pipeline.planning.ns", planning_time.as_nanos() as u64);
    jucq_obs::metrics::histogram_record("pipeline.execution.ns", outcome.elapsed.as_nanos() as u64);
    if let Some(cache) = ctx.cache {
        let stats = lock_cache(cache).stats();
        let lookups = stats.hits + stats.misses;
        if lookups > 0 {
            jucq_obs::metrics::gauge_set(
                "plan_cache.hit_ratio",
                stats.hits as f64 / lookups as f64,
            );
        }
    }

    Ok((
        AnswerReport {
            strategy: strategy.name(),
            rows: outcome.relation,
            counters: c,
            eval_time: outcome.elapsed,
            planning_time,
            union_terms,
            cover,
            covers_explored: explored,
            range_eligible,
            range_scans_planned,
            view_catalog_size: ctx.views.map(|c| c.stats().entries).unwrap_or(0),
        },
        exec_profile,
    ))
}

impl RdfDatabase {
    /// Answer `q` with `strategy`, reporting timings and plan shape.
    ///
    /// When a query-log sink is installed (`--query-log` /
    /// `JUCQ_QUERY_LOG`; see [`jucq_obs::record`]), the run is profiled
    /// per node and a structured [`jucq_obs::QueryRecord`] is submitted
    /// to the sink.
    pub fn answer(
        &mut self,
        q: &BgpQuery,
        strategy: &Strategy,
    ) -> Result<AnswerReport, AnswerError> {
        if !jucq_obs::record::installed() {
            return self.answer_impl(q, strategy, false).map(|(report, _)| report);
        }
        let (result, record) = self.answer_recorded(q, strategy);
        if let Some(rec) = record {
            jucq_obs::record::submit(rec);
        }
        result
    }

    /// Answer `q` and also build — but do not submit — its query-log
    /// record. [`RdfDatabase::answer`] submits the record when a sink
    /// is installed; the replay harness ([`crate::telemetry::replay`])
    /// compares records instead of logging them. The record is `None`
    /// only for the empty-body short-circuit, which has nothing to
    /// profile.
    pub fn answer_recorded(
        &mut self,
        q: &BgpQuery,
        strategy: &Strategy,
    ) -> (Result<AnswerReport, AnswerError>, Option<jucq_obs::QueryRecord>) {
        if q.is_empty() {
            return (self.answer_impl(q, strategy, false).map(|(report, _)| report), None);
        }
        let before = self.plan_cache_stats();
        let result = self.answer_impl(q, strategy, true);
        let after = self.plan_cache_stats();
        let record = crate::telemetry::build_record(
            self.graph.dict(),
            &self.profile,
            q,
            strategy,
            &result,
            before.as_ref(),
            after.as_ref(),
        );
        (result.map(|(report, _)| report), Some(record))
    }

    /// The shared answering pipeline. With `profiled`, evaluation runs
    /// with per-node runtime profiling and the [`ExecProfile`] is
    /// returned alongside the report (the data behind query-log
    /// records); without, evaluation takes the unprofiled fast path.
    fn answer_impl(
        &mut self,
        q: &BgpQuery,
        strategy: &Strategy,
        profiled: bool,
    ) -> Result<(AnswerReport, Option<jucq_store::ExecProfile>), AnswerError> {
        jucq_obs::span!("answer");
        if q.is_empty() {
            return Ok(empty_answer(q, strategy));
        }
        self.prepare();
        answer_on(&self.answer_ctx(), q, strategy, profiled)
    }

    /// `EXPLAIN`: plan `q` exactly as [`RdfDatabase::answer`] would
    /// (cover choice, reformulation, physical lowering) and render the
    /// admission decision plus the physical operator tree — without
    /// executing anything.
    pub fn explain(&mut self, q: &BgpQuery, strategy: &Strategy) -> Result<String, AnswerError> {
        if q.is_empty() {
            return Ok(format!(
                "Strategy: {} (empty query: no atoms, no answers)\n",
                strategy.name()
            ));
        }
        let (jucq, cover, _, saturated, _) = self.plan_jucq(q, strategy)?;
        let p = self.prepared.as_ref().expect("plan_jucq prepares");
        let target = if saturated { &p.saturated } else { &p.plain };
        let mut out = format!(
            "Strategy: {} (target: {} store)\n",
            strategy.name(),
            if saturated { "saturated" } else { "plain" }
        );
        if let Some(c) = &cover {
            out.push_str(&format!("Cover: {:?}\n", c.fragments()));
        }
        // Decode RangeScan interval endpoints through the dictionary so
        // the plan reads `o∈[#u12, #u12+5) (Publication)` instead of a
        // bare id interval.
        let dict = self.graph.dict();
        let names = |raw: u32| -> Option<String> {
            let id = jucq_model::TermId::from_raw(raw);
            dict.contains_id(id).then(|| dict.lexical(id).to_owned())
        };
        out.push_str(&jucq_store::explain::explain_with_names(target, &jucq, Some(&names)));
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: plan `q` exactly as [`RdfDatabase::answer`]
    /// would (including the plan cache), then evaluate it with per-node
    /// profiling and render each plan node's estimated vs. actual rows
    /// and Q-error.
    pub fn explain_analyze(
        &mut self,
        q: &BgpQuery,
        strategy: &Strategy,
    ) -> Result<String, AnswerError> {
        if q.is_empty() {
            return Ok(format!(
                "Strategy: {} (empty query: no atoms, no answers)\n",
                strategy.name()
            ));
        }
        let (jucq, cover, _, saturated, _) = self.plan_jucq(q, strategy)?;
        let p = self.prepared.as_ref().expect("plan_jucq prepares");
        let target = if saturated { &p.saturated } else { &p.plain };
        let mut out = format!(
            "Strategy: {} (target: {} store)\n",
            strategy.name(),
            if saturated { "saturated" } else { "plain" }
        );
        if let Some(c) = &cover {
            out.push_str(&format!("Cover: {:?}\n", c.fragments()));
        }
        out.push_str(&jucq_store::explain::explain_analyze(target, &jucq)?);
        Ok(out)
    }

    /// Convenience: parse then answer.
    pub fn answer_sparql(
        &mut self,
        text: &str,
        strategy: &Strategy,
    ) -> Result<AnswerReport, Box<dyn std::error::Error>> {
        let q = self.parse_query(text)?;
        Ok(self.answer(&q, strategy)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::vocab;
    use jucq_store::{PatternTerm, StorePattern};

    fn paper_db() -> RdfDatabase {
        let mut db = RdfDatabase::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        db.extend(&[
            t("doi1", vocab::RDF_TYPE, Term::uri("Book")),
            t("doi1", "writtenBy", Term::blank("b1")),
            t("doi1", "hasTitle", Term::literal("Game of Thrones")),
            Triple::new(
                Term::blank("b1"),
                Term::uri("hasName"),
                Term::literal("George R. R. Martin"),
            ),
            t("doi1", "publishedIn", Term::literal("1996")),
            t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
            t("writtenBy", vocab::RDFS_DOMAIN, Term::uri("Book")),
            t("writtenBy", vocab::RDFS_RANGE, Term::uri("Person")),
        ]);
        db.set_cost_constants(CostConstants::default());
        db
    }

    /// The paper's Example 3: q(x3):- x1 hasAuthor x2, x2 hasName x3,
    /// x1 x4 "1996".
    fn example3_query(db: &mut RdfDatabase) -> BgpQuery {
        db.prepare();
        let d = db.graph().dict();
        let has_author = d.lookup(&Term::uri("hasAuthor")).unwrap();
        let has_name = d.lookup(&Term::uri("hasName")).unwrap();
        let lit = d.lookup(&Term::literal("1996")).unwrap();
        BgpQuery::new(
            vec![2],
            vec![
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(has_author),
                    PatternTerm::Var(1),
                ),
                StorePattern::new(
                    PatternTerm::Var(1),
                    PatternTerm::Const(has_name),
                    PatternTerm::Var(2),
                ),
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Var(3),
                    PatternTerm::Const(lit),
                ),
            ],
        )
    }

    #[test]
    fn example3_all_strategies_agree() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        let mut answers = Vec::new();
        for s in [
            Strategy::Saturation,
            Strategy::Ucq,
            Strategy::Scq,
            Strategy::ecov_default(),
            Strategy::gcov_default(),
        ] {
            let mut r = db.answer(&q, &s).unwrap();
            r.rows.sort();
            answers.push((s.name(), db.decode_rows(&r.rows)));
        }
        // The paper's expected answer: "George R. R. Martin".
        for (name, rows) in &answers {
            assert_eq!(rows, &vec![vec![Term::literal("George R. R. Martin")]], "strategy {name}");
        }
    }

    #[test]
    fn direct_evaluation_on_plain_store_is_incomplete() {
        // The paper: "evaluating q directly against G leads to the
        // empty answer".
        let mut db = paper_db();
        let q = example3_query(&mut db);
        let store = db.plain_store();
        let out = store.eval_cq(&q.to_store_cq()).unwrap();
        assert!(out.relation.is_empty());
    }

    #[test]
    fn fixed_cover_strategy_matches_ucq() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        let cover = Cover::new(&q, vec![vec![0, 1], vec![0, 2]]).unwrap();
        let mut a = db.answer(&q, &Strategy::FixedCover(cover)).unwrap();
        let mut b = db.answer(&q, &Strategy::Ucq).unwrap();
        a.rows.sort();
        b.rows.sort();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn insert_invalidates_preparation() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        let before = db.answer(&q, &Strategy::Ucq).unwrap().rows.len();
        // A second book in 1996 whose author has a name.
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        db.extend(&[
            t("doi2", "writtenBy", Term::uri("a2")),
            t("a2", "hasName", Term::literal("Second Author")),
            t("doi2", "publishedIn", Term::literal("1996")),
        ]);
        let after = db.answer(&q, &Strategy::Ucq).unwrap().rows.len();
        assert_eq!(before + 1, after, "reformulation adapts to updates without re-saturation");
    }

    #[test]
    fn report_carries_plan_shape() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        let r = db.answer(&q, &Strategy::Scq).unwrap();
        assert_eq!(r.strategy, "SCQ");
        assert_eq!(r.cover.as_ref().unwrap().len(), 3);
        assert!(r.union_terms >= 3);
        let g = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert!(g.covers_explored.unwrap() >= 1);
    }

    #[test]
    fn schema_queries_answer_from_materialized_closure() {
        let mut db = paper_db();
        db.prepare();
        let d = db.graph().dict();
        let subclass = d.lookup(&Term::uri(vocab::RDFS_SUBCLASS_OF)).unwrap();
        let q = BgpQuery::new(
            vec![0, 1],
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(subclass),
                PatternTerm::Var(1),
            )],
        );
        let r = db.answer(&q, &Strategy::Ucq).unwrap();
        assert_eq!(r.rows.len(), 1, "Book ⊑ Publication");
        let s = db.answer(&q, &Strategy::Saturation).unwrap();
        assert_eq!(s.rows.len(), 1);
    }

    #[test]
    fn incremental_updates_keep_all_strategies_consistent() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        db.prepare();
        // A new 1996 book by a named author — within known vocabulary.
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let batch = vec![
            t("doi2", "writtenBy", Term::uri("a2")),
            t("a2", "hasName", Term::literal("Second Author")),
            t("doi2", "publishedIn", Term::literal("1996")),
        ];
        let report = db.apply_data_updates(&batch, &[]);
        assert!(report.incremental, "stays within known vocabulary");
        assert_eq!(report.inserted, 3);
        assert!(report.entailed_added >= 2, "hasAuthor + types entailed");
        for s in [Strategy::Saturation, Strategy::Ucq, Strategy::gcov_default()] {
            let r = db.answer(&q, &s).unwrap();
            assert_eq!(r.rows.len(), 2, "{}", s.name());
        }
        // Delete the new book again.
        let report = db.apply_data_updates(&[], &batch);
        assert!(report.incremental);
        assert_eq!(report.deleted, 3);
        for s in [Strategy::Saturation, Strategy::Ucq] {
            let r = db.answer(&q, &s).unwrap();
            assert_eq!(r.rows.len(), 1, "{}", s.name());
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let batch = vec![
            t("doi3", "writtenBy", Term::uri("a3")),
            t("a3", "hasName", Term::literal("Third Author")),
        ];
        // Path A: incremental maintenance.
        let mut inc = paper_db();
        inc.prepare();
        let r = inc.apply_data_updates(&batch, &[]);
        assert!(r.incremental);
        // Path B: full rebuild from scratch.
        let mut full = paper_db();
        full.extend(&batch);
        full.prepare();
        let q_text = "SELECT ?x WHERE { ?x rdf:type <Person> . }";
        let qi = inc.parse_query(q_text).unwrap();
        let qf = full.parse_query(q_text).unwrap();
        for s in [Strategy::Saturation, Strategy::Ucq] {
            let mut a = inc.answer(&qi, &s).unwrap().rows;
            let mut b = full.answer(&qf, &s).unwrap().rows;
            a.sort();
            b.sort();
            assert_eq!(inc.decode_rows(&a), full.decode_rows(&b), "{}", s.name());
        }
        // Saturated store contents agree exactly (decoded: the two
        // databases intern terms in different orders).
        let decode_all = |db: &mut RdfDatabase| -> Vec<String> {
            let triples: Vec<_> = db.saturated_store().table().all().to_vec();
            let mut out: Vec<String> =
                triples.iter().map(|t| db.graph().decode(t).to_string()).collect();
            out.sort();
            out
        };
        assert_eq!(decode_all(&mut inc), decode_all(&mut full));
    }

    #[test]
    fn new_vocabulary_falls_back_to_rebuild() {
        let mut db = paper_db();
        db.prepare();
        let t = Triple::new(Term::uri("x"), Term::uri("brandNewProperty"), Term::uri("y"));
        let report = db.apply_data_updates(&[t], &[]);
        assert!(!report.incremental, "unknown property forces a rebuild");
        assert_eq!(report.inserted, 1);
        // Still answers fine after the lazy rebuild.
        let q = example3_query(&mut db);
        assert!(db.answer(&q, &Strategy::Ucq).is_ok());
    }

    #[test]
    fn schema_updates_fall_back_to_rebuild() {
        let mut db = paper_db();
        db.prepare();
        let t = Triple::new(
            Term::uri("Publication"),
            Term::uri(vocab::RDFS_SUBCLASS_OF),
            Term::uri("Document"),
        );
        let report = db.apply_data_updates(&[t], &[]);
        assert!(!report.incremental);
        // The new superclass is honoured after re-preparation.
        let mut q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Document> . }").unwrap();
        let r = db.answer(&q, &Strategy::Ucq).unwrap();
        assert_eq!(r.rows.len(), 1, "doi1 is now a Document");
        q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Document> . }").unwrap();
        let s = db.answer(&q, &Strategy::Saturation).unwrap();
        assert_eq!(s.rows.len(), 1);
    }

    #[test]
    fn explain_analyze_reports_per_node_q_errors() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        let text = db.explain_analyze(&q, &Strategy::gcov_default()).unwrap();
        assert!(text.contains("Strategy: GCov"), "{text}");
        assert!(text.contains("Cover:"), "{text}");
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("Q-error"), "{text}");
        assert!(text.contains("union"), "{text}");
        assert!(text.contains("dedup"), "{text}");
        let sat = db.explain_analyze(&q, &Strategy::Saturation).unwrap();
        assert!(sat.contains("saturated store"), "{sat}");
    }

    #[test]
    fn observability_exports_spans_and_plan_cache_metrics() {
        let _serial = crate::obs_test_lock();
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        jucq_obs::reset();
        jucq_obs::set_enabled(true);
        db.answer(&q, &Strategy::gcov_default()).unwrap();
        db.answer(&q, &Strategy::gcov_default()).unwrap();
        jucq_obs::set_enabled(false);
        let session = jucq_obs::take_session();
        jucq_obs::global().reset();

        assert!(session.metrics.counter("plan_cache.hits") >= 1);
        assert!(session.metrics.counter("plan_cache.misses") >= 1);
        assert!(session.metrics.counter("queries.answered") >= 2);
        assert!(session.metrics.counter("exec.tuples_scanned") >= 1);
        assert!(session.metrics.gauges.contains_key("plan_cache.hit_ratio"));
        assert!(session.metrics.histograms.contains_key("pipeline.planning.ns"));
        assert!(session.metrics.histograms.contains_key("pipeline.execution.ns"));

        let names: std::collections::HashSet<&str> = session.spans.iter().map(|s| s.name).collect();
        for expected in
            ["answer", "planning", "execution", "reformulation", "cover_search", "cost_estimation"]
        {
            assert!(names.contains(expected), "missing span `{expected}` in {names:?}");
        }

        let json = jucq_obs::export::to_json(&session);
        assert!(json.contains("\"jucq-obs/1\""));
        assert!(json.contains("plan_cache.hits"));
        assert!(json.contains("cover_search"));
    }

    #[test]
    fn plan_cache_reuses_covers() {
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        let first = db.answer(&q, &Strategy::gcov_default()).unwrap();
        let second = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(first.cover, second.cover);
        let stats = db.plan_cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Cached answers are still correct.
        let mut a = first.rows;
        let mut b = second.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // ECov caches separately.
        db.answer(&q, &Strategy::ecov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().misses, 2);
    }

    #[test]
    fn plan_cache_hits_on_isomorphic_queries() {
        let mut db = paper_db();
        db.enable_plan_cache(8);
        // The same query twice, with renamed variables and reordered
        // atoms — must share one cached cover.
        let a = db
            .parse_query(
                "SELECT ?n WHERE { ?b <hasAuthor> ?p . ?p <hasName> ?n . ?b <publishedIn> \"1996\" }",
            )
            .unwrap();
        let b = db
            .parse_query(
                "SELECT ?out WHERE { ?who <hasName> ?out . ?doc <publishedIn> \"1996\" . ?doc <hasAuthor> ?who }",
            )
            .unwrap();
        let ra = db.answer(&a, &Strategy::gcov_default()).unwrap();
        let rb = db.answer(&b, &Strategy::gcov_default()).unwrap();
        let stats = db.plan_cache_stats().unwrap();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1, "isomorphic query hits the canonical key");
        let mut x = ra.rows;
        let mut y = rb.rows;
        x.sort();
        y.sort();
        assert_eq!(x, y, "translated cover answers identically");
    }

    #[test]
    fn plan_cache_survives_incremental_updates() {
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        db.answer(&q, &Strategy::gcov_default()).unwrap();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let batch = vec![
            t("doi9", "writtenBy", Term::uri("a9")),
            t("a9", "hasName", Term::literal("Nine")),
            t("doi9", "publishedIn", Term::literal("1996")),
        ];
        let report = db.apply_data_updates(&batch, &[]);
        assert!(report.incremental);
        let r = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().hits, 1, "cover reused");
        assert_eq!(r.rows.len(), 2, "cached cover sees the new data");
        // A full invalidation clears the cache.
        db.insert(&t("x", "brandNew", Term::uri("y")));
        db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().misses, 2);
    }

    #[test]
    fn minimized_ucq_is_smaller_and_equivalent() {
        let mut db = paper_db();
        // q(x, y):- x rdf:type y: the instantiation members (x τ Book)
        // etc. are subsumed by the original and must be dropped.
        let q = db.parse_query("SELECT ?x ?y WHERE { ?x a ?y }").unwrap();
        let full = db.answer(&q, &Strategy::Ucq).unwrap();
        let min = db.answer(&q, &Strategy::minimized_ucq_default()).unwrap();
        assert!(
            min.union_terms < full.union_terms,
            "minimization shrinks the union ({} vs {})",
            min.union_terms,
            full.union_terms
        );
        let mut a = full.rows;
        let mut b = min.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "answers unchanged");
    }

    fn all_strategies() -> Vec<Strategy> {
        vec![
            Strategy::Saturation,
            Strategy::Ucq,
            Strategy::Scq,
            Strategy::Range,
            Strategy::minimized_ucq_default(),
            Strategy::ecov_default(),
            Strategy::gcov_default(),
        ]
    }

    /// A four-level class chain with a property hierarchy, loaded under
    /// both encodings.
    fn hierarchy_db(mode: EncodingMode) -> RdfDatabase {
        let mut db = RdfDatabase::new().with_encoding(mode);
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let mut triples = vec![
            t("Novel", vocab::RDFS_SUBCLASS_OF, Term::uri("Book")),
            t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("Article", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("Publication", vocab::RDFS_SUBCLASS_OF, Term::uri("Work")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
        ];
        for (i, class) in
            ["Novel", "Book", "Article", "Publication", "Work"].into_iter().enumerate()
        {
            triples.push(t(&format!("doc{i}"), vocab::RDF_TYPE, Term::uri(class)));
            triples.push(t(&format!("doc{i}"), "writtenBy", Term::uri(format!("a{i}"))));
        }
        db.extend(&triples);
        db.set_cost_constants(CostConstants::default());
        db
    }

    #[test]
    fn range_strategy_agrees_with_ucq_under_both_encodings() {
        let q_text = "SELECT ?x WHERE { ?x rdf:type <Work> . }";
        let mut expected: Option<Vec<Vec<Term>>> = None;
        for mode in [EncodingMode::Plain, EncodingMode::Hierarchical] {
            let mut db = hierarchy_db(mode);
            let q = db.parse_query(q_text).unwrap();
            for s in [Strategy::Ucq, Strategy::Range, Strategy::Saturation] {
                let mut r = db.answer(&q, &s).unwrap();
                r.rows.sort();
                let decoded = db.decode_rows(&r.rows);
                match &expected {
                    None => expected = Some(decoded),
                    Some(e) => assert_eq!(e, &decoded, "{mode:?}/{}", s.name()),
                }
            }
        }
        assert_eq!(expected.map(|e| e.len()), Some(5), "all five docs are Works");
    }

    #[test]
    fn hierarchical_encoding_collapses_class_subtree_queries() {
        let mut db = hierarchy_db(EncodingMode::Hierarchical);
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let r = db.answer(&q, &Strategy::Range).unwrap();
        assert!(
            r.counters.range_scans >= 1,
            "the five-class subtree collapses into a range scan (counters: {:?})",
            r.counters
        );
        let enc = db.hierarchy_encoding().expect("encoding ran");
        let work = db.graph().dict().lookup(&Term::uri("Work")).unwrap();
        let range = enc.descendant_range(work).expect("tree-shaped subtree is exact");
        assert_eq!(range.width(), 5, "Work covers all five classes");
        // Knob off: Range degenerates to plain UCQ (no range scans).
        db.set_profile(EngineProfile::pg_like().with_range_scans(false));
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let off = db.answer(&q, &Strategy::Range).unwrap();
        assert_eq!(off.counters.range_scans, 0);
        let mut a = r.rows;
        let mut b = off.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "knob off changes nothing but the plan");
    }

    #[test]
    fn schema_insert_after_answer_refreshes_hierarchy_encoding() {
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let mut db = hierarchy_db(EncodingMode::Hierarchical);
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let first = db.answer(&q, &Strategy::Range).unwrap();
        assert!(first.counters.range_scans >= 1);
        assert_eq!(first.rows.len(), 5);

        // Grow the schema *after* the first answer: a new class under
        // Publication, plus an instance of it.
        db.extend(&[
            t("Thesis", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("doc9", vocab::RDF_TYPE, Term::uri("Thesis")),
        ]);

        // Re-parse (the re-encoding remaps ids) and compare Range
        // against UCQ differentially.
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let mut range = db.answer(&q, &Strategy::Range).unwrap();
        let mut ucq = db.answer(&q, &Strategy::Ucq).unwrap();
        range.rows.sort();
        ucq.rows.sort();
        assert_eq!(db.decode_rows(&range.rows), db.decode_rows(&ucq.rows));
        assert_eq!(range.rows.len(), 6, "doc9 (a Thesis) is a Work now");
        assert!(
            range.counters.range_scans >= 1,
            "collapse re-engages over the refreshed intervals (counters: {:?})",
            range.counters
        );
        // And the interval metadata tells the truth again: before the
        // fix the encoding never re-ran, so `descendant_range` kept
        // reporting the pre-update width of 5.
        let enc = db.hierarchy_encoding().expect("encoding re-ran");
        let work = db.graph().dict().lookup(&Term::uri("Work")).unwrap();
        let interval = enc.descendant_range(work).expect("still a tree");
        assert_eq!(interval.width(), 6, "Work now covers six classes");
    }

    #[test]
    fn enable_plan_cache_again_preserves_entries_and_stats() {
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        let s = Strategy::gcov_default();
        db.answer(&q, &s).unwrap(); // cover miss
        db.answer(&q, &s).unwrap(); // cover hit
        let before = db.plan_cache_stats().unwrap();
        assert_eq!(before.hits, 1);
        assert_eq!(before.misses, 1);
        // Re-enabling (e.g. on a profile reload) resizes in place:
        // entries and counters survive instead of being clobbered.
        db.enable_plan_cache(16);
        let after = db.plan_cache_stats().unwrap();
        assert_eq!(after, before, "re-enable must not drop stats");
        db.answer(&q, &s).unwrap();
        let stats = db.plan_cache_stats().unwrap();
        assert_eq!(stats.hits, 2, "the warm entry still serves after re-enable");
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn explain_renders_range_scans_with_decoded_names() {
        let mut db = hierarchy_db(EncodingMode::Hierarchical);
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let text = db.explain(&q, &Strategy::Range).unwrap();
        assert!(text.contains("RangeScan"), "{text}");
        assert!(text.contains("(Work)"), "decoded subtree-root name:\n{text}");
        assert!(text.contains("+5)"), "interval width of the five-class subtree:\n{text}");
        // Knob off: the same query explains as a plain UCQ of
        // IndexScans — the fallback plan, not a half-collapsed hybrid.
        db.set_profile(EngineProfile::pg_like().with_range_scans(false));
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let text = db.explain(&q, &Strategy::Range).unwrap();
        assert!(!text.contains("RangeScan"), "{text}");
        assert!(text.contains("IndexScan"), "{text}");
    }

    #[test]
    fn answer_report_carries_range_plan_telemetry() {
        let mut db = hierarchy_db(EncodingMode::Hierarchical);
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let r = db.answer(&q, &Strategy::Range).unwrap();
        assert_eq!(r.range_eligible, 1, "the single fragment has a collapsible run");
        assert!(r.range_scans_planned >= 1, "and the collapse was applied");
        // Knob off: the opportunity is still reported, unapplied.
        db.set_profile(EngineProfile::pg_like().with_range_scans(false));
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let off = db.answer(&q, &Strategy::Range).unwrap();
        assert_eq!(off.range_eligible, 1);
        assert_eq!(off.range_scans_planned, 0);
    }

    #[test]
    fn range_records_log_and_replay() {
        let mut db = hierarchy_db(EncodingMode::Hierarchical);
        let q = db.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let (res, rec) = db.answer_recorded(&q, &Strategy::Range);
        res.unwrap();
        let rec = rec.unwrap();
        assert_eq!(rec.strategy, "Range");
        assert_eq!(rec.range_eligible, 1);
        assert!(rec.range_scans_used >= 1, "counters: {:?}", rec.counters);
        assert_eq!(rec.counters.range_scans, rec.range_scans_used);
        // The record round-trips through the jucq-log/2 line format and
        // replays cleanly under its recorded Range strategy.
        let parsed = jucq_obs::QueryRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(parsed, rec);
        let report = crate::telemetry::replay(&mut db, &[parsed]);
        assert_eq!(report.mismatches(), 0, "{:?}", report.entries);
    }

    #[test]
    fn empty_database_answers_cleanly() {
        let mut db = RdfDatabase::new();
        db.set_cost_constants(CostConstants::default());
        let p = db.intern_uri("nosuch");
        let q = BgpQuery::new(
            vec![0],
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(p),
                PatternTerm::Var(1),
            )],
        );
        for s in all_strategies() {
            let r = db.answer(&q, &s).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(r.rows.is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn absent_vocabulary_answers_empty() {
        // Predicate/class never seen in the data or schema: every
        // strategy must return a clean empty result, not an error.
        let mut db = paper_db();
        let ty = db.rdf_type();
        let ghost_class = db.intern_uri("GhostClass");
        let ghost_prop = db.intern_uri("ghostProp");
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(ty),
                    PatternTerm::Const(ghost_class),
                ),
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(ghost_prop),
                    PatternTerm::Var(1),
                ),
            ],
        );
        for s in all_strategies() {
            let r = db.answer(&q, &s).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(r.rows.is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn zero_atom_query_answers_empty_for_every_strategy() {
        let mut db = paper_db();
        let q = BgpQuery::new(vec![], vec![]);
        for s in all_strategies() {
            let r = db.answer(&q, &s).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(r.rows.is_empty(), "{}", s.name());
            assert_eq!(r.union_terms, 0, "{}", s.name());
            assert!(r.cover.is_none(), "{}", s.name());
        }
        let text = db.explain_analyze(&q, &Strategy::Ucq).unwrap();
        assert!(text.contains("empty query"), "{text}");
    }

    #[test]
    fn disconnected_query_reports_cover_error_not_panic() {
        // A cartesian-product body has no valid cover (Definition 3.3
        // forbids isolated fragments); saturation still answers, and
        // every cover-based strategy reports a CoverError instead of
        // panicking.
        let mut db = paper_db();
        db.prepare();
        let d = db.graph().dict();
        let has_name = d.lookup(&Term::uri("hasName")).unwrap();
        let published = d.lookup(&Term::uri("publishedIn")).unwrap();
        let q = BgpQuery::new(
            vec![0],
            vec![
                StorePattern::new(
                    PatternTerm::Var(0),
                    PatternTerm::Const(has_name),
                    PatternTerm::Var(1),
                ),
                StorePattern::new(
                    PatternTerm::Var(2),
                    PatternTerm::Const(published),
                    PatternTerm::Var(3),
                ),
            ],
        );
        assert!(db.answer(&q, &Strategy::Saturation).is_ok());
        for s in [Strategy::Ucq, Strategy::Scq, Strategy::ecov_default(), Strategy::gcov_default()]
        {
            let err = db.answer(&q, &s).unwrap_err();
            assert!(matches!(err, AnswerError::Cover(_)), "{}: {err}", s.name());
        }
    }

    #[test]
    fn set_profile_rekeys_the_plan_cache_pg_to_mysql() {
        // Regression: covers (and physical plans) chosen under the
        // pg-like cost model must not be served after switching to
        // mysql-like — and switching back must find the pg entries
        // again instead of re-searching.
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        let pg = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().misses, 1);

        db.set_profile(EngineProfile::mysql_like());
        let my = db.answer(&q, &Strategy::gcov_default()).unwrap();
        let stats = db.plan_cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "mysql-like key misses the pg-like entry");
        assert_eq!(stats.hits, 0);

        db.set_profile(EngineProfile::pg_like());
        db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().hits, 1, "pg-like entry still cached");

        let mut a = pg.rows;
        let mut b = my.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b, "profiles agree on the answer");
    }

    #[test]
    fn toggling_batch_or_sip_knobs_rekeys_the_plan_cache() {
        // Same staleness class as the pg↔mysql switch above: a physical
        // plan lowered with SIP filters (or a given batch setting) must
        // not replay after the knob changes, since the staged driver
        // and the lowered `Plan::sip` table differ.
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        let base = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().misses, 1);

        db.set_profile(EngineProfile::pg_like().with_sip_filters(false));
        let no_sip = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().misses, 2, "sip toggle misses");

        db.set_profile(EngineProfile::pg_like().with_batch_size(0));
        let row_mode = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().misses, 3, "batch toggle misses");

        db.set_profile(EngineProfile::pg_like());
        db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(db.plan_cache_stats().unwrap().hits, 1, "original entry still cached");

        let mut base = base.rows;
        let mut no_sip = no_sip.rows;
        let mut row_mode = row_mode.rows;
        base.sort();
        no_sip.sort();
        row_mode.sort();
        assert_eq!(base, no_sip, "answers agree without SIP");
        assert_eq!(base, row_mode, "answers agree row-at-a-time");
    }

    #[test]
    fn set_profile_keeps_pinned_constants_and_recalibrates_otherwise() {
        // Pinned constants survive a profile switch untouched.
        let mut db = paper_db();
        db.prepare();
        let pinned = db.cost_constants();
        db.set_profile(EngineProfile::mysql_like());
        assert_eq!(db.cost_constants(), pinned, "pinned constants are kept");
        // Unpinned constants are recalibrated for the new profile (the
        // values are measured, so assert only that answering still
        // works against the refreshed model).
        let mut db = RdfDatabase::new();
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        db.extend(&[
            t("doi1", "writtenBy", Term::uri("a1")),
            t("a1", "hasName", Term::literal("One")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
        ]);
        db.prepare();
        db.set_profile(EngineProfile::mysql_like());
        let q = db.parse_query("SELECT ?n WHERE { ?b <hasAuthor> ?a . ?a <hasName> ?n }").unwrap();
        let r = db.answer(&q, &Strategy::gcov_default()).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn physical_plans_are_cached_and_cleared_on_updates() {
        let mut db = paper_db();
        db.enable_plan_cache(8);
        let q = example3_query(&mut db);
        let first = db.answer(&q, &Strategy::gcov_default()).unwrap();
        let second = db.answer(&q, &Strategy::gcov_default()).unwrap();
        let stats = db.plan_cache_stats().unwrap();
        assert_eq!(stats.plan_misses, 1, "first run lowers the plan");
        assert_eq!(stats.plan_hits, 1, "second run reuses it");
        let mut a = first.rows;
        let mut b = second.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // An incremental data update keeps the cover but drops the
        // lowered plan (its join orders reflect the old statistics).
        let t = |s: &str, p: &str, o: Term| Triple::new(Term::uri(s), Term::uri(p), o);
        let report = db.apply_data_updates(
            &[
                t("doi9", "writtenBy", Term::uri("a9")),
                t("a9", "hasName", Term::literal("Nine")),
                t("doi9", "publishedIn", Term::literal("1996")),
            ],
            &[],
        );
        assert!(report.incremental);
        let r = db.answer(&q, &Strategy::gcov_default()).unwrap();
        let stats = db.plan_cache_stats().unwrap();
        assert_eq!(stats.hits, 2, "cover reused across the update");
        assert_eq!(stats.plan_misses, 2, "plan re-lowered after the update");
        assert_eq!(r.rows.len(), 2, "fresh plan sees the new data");
    }

    #[test]
    fn profile_switch_affects_admission() {
        let mut db = paper_db();
        let q = example3_query(&mut db);
        db.set_profile(EngineProfile::pg_like().with_max_union_terms(1));
        let err = db.answer(&q, &Strategy::Ucq).unwrap_err();
        assert!(matches!(err, AnswerError::Engine(EngineError::UnionTooLarge { .. })));
        // Saturation is unaffected (single CQ).
        assert!(db.answer(&q, &Strategy::Saturation).is_ok());
    }
}
