//! Binary graph snapshots: persist a loaded RDF graph (dictionary,
//! schema, data) and reload it without re-parsing — the difference
//! between re-tokenizing megabytes of Turtle and one sequential read.
//!
//! The format is a simple length-prefixed little-endian layout
//! (built with the `bytes` crate):
//!
//! ```text
//! magic  "JUCQSNAP"            8 bytes
//! version u16                  currently 1
//! uris    u32 count, then (u32 len, bytes)*     — ids are assigned
//! literals u32 count, then (u32 len, bytes)*      densely per kind in
//! blanks  u32 count, then (u32 len, bytes)*       file order
//! schema  4 × (u32 count, then (u32 raw, u32 raw)*)
//! data    u64 count, then (u32 s, u32 p, u32 o)*
//! ```
//!
//! Everything is validated on load; corrupt or truncated input yields a
//! typed [`SnapshotError`], never a panic.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use jucq_model::term::TermKind;
use jucq_model::{Dictionary, Graph, Schema, Term, TermId, TripleId};

/// Snapshot format magic.
const MAGIC: &[u8; 8] = b"JUCQSNAP";
/// Current format version.
const VERSION: u16 = 1;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The magic bytes are wrong (not a snapshot file).
    BadMagic,
    /// The version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The input ended before the declared content.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// A string is not valid UTF-8.
    BadString,
    /// A term id references a dictionary slot that does not exist.
    DanglingId(u32),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a jucq snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated { reading } => {
                write!(f, "truncated snapshot while reading {reading}")
            }
            SnapshotError::BadString => write!(f, "snapshot contains invalid UTF-8"),
            SnapshotError::DanglingId(raw) => {
                write!(f, "snapshot references unknown term id {raw:#x}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Serialize a graph to the snapshot format.
pub fn save(graph: &Graph) -> Bytes {
    let dict = graph.dict();
    let mut buf = BytesMut::with_capacity(64 + graph.len() * 12);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    // Dictionary sections, per kind, in dense id order.
    for kind in [TermKind::Uri, TermKind::Literal, TermKind::Blank] {
        let count = dict.kind_len(kind);
        buf.put_u32_le(count as u32);
        for idx in 0..count as u32 {
            put_str(&mut buf, dict.lexical(TermId::new(kind, idx)));
        }
    }

    // Schema sections.
    let schema = graph.schema();
    for list in [&schema.subclass, &schema.subproperty, &schema.domain, &schema.range] {
        buf.put_u32_le(list.len() as u32);
        for &(a, b) in list.iter() {
            buf.put_u32_le(a.raw());
            buf.put_u32_le(b.raw());
        }
    }

    // Data triples.
    buf.put_u64_le(graph.data().len() as u64);
    for t in graph.data() {
        buf.put_u32_le(t.s.raw());
        buf.put_u32_le(t.p.raw());
        buf.put_u32_le(t.o.raw());
    }
    buf.freeze()
}

fn get_slice<'a>(
    buf: &mut &'a [u8],
    n: usize,
    what: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    if buf.len() < n {
        return Err(SnapshotError::Truncated { reading: what });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u32(buf: &mut &[u8], what: &'static str) -> Result<u32, SnapshotError> {
    Ok(get_slice(buf, 4, what)?.get_u32_le())
}

fn get_u64(buf: &mut &[u8], what: &'static str) -> Result<u64, SnapshotError> {
    Ok(get_slice(buf, 8, what)?.get_u64_le())
}

fn get_str(buf: &mut &[u8], what: &'static str) -> Result<String, SnapshotError> {
    let len = get_u32(buf, what)? as usize;
    let bytes = get_slice(buf, len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadString)
}

/// Deserialize a snapshot back into a graph.
pub fn load(data: &[u8]) -> Result<Graph, SnapshotError> {
    let mut buf = data;
    let magic = get_slice(&mut buf, 8, "magic")?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = get_slice(&mut buf, 2, "version")?.get_u16_le();
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }

    let mut dict = Dictionary::new();
    for kind in [TermKind::Uri, TermKind::Literal, TermKind::Blank] {
        let count = get_u32(&mut buf, "dictionary count")? as usize;
        for i in 0..count {
            let lex = get_str(&mut buf, "dictionary entry")?;
            let term = match kind {
                TermKind::Uri => Term::Uri(lex),
                TermKind::Literal => Term::Literal(lex),
                TermKind::Blank => Term::Blank(lex),
            };
            let id = dict.encode(&term);
            debug_assert_eq!(id.index() as usize, i, "dense id assignment");
        }
    }
    let check = |raw: u32| -> Result<TermId, SnapshotError> {
        let id = TermId::from_raw(raw);
        if dict.contains_id(id) {
            Ok(id)
        } else {
            Err(SnapshotError::DanglingId(raw))
        }
    };

    let mut schema = Schema::new();
    for list in
        [&mut schema.subclass, &mut schema.subproperty, &mut schema.domain, &mut schema.range]
    {
        let count = get_u32(&mut buf, "schema count")? as usize;
        for _ in 0..count {
            let a = check(get_u32(&mut buf, "schema pair")?)?;
            let b = check(get_u32(&mut buf, "schema pair")?)?;
            list.push((a, b));
        }
    }

    let n = get_u64(&mut buf, "data count")? as usize;
    let mut triples = Vec::with_capacity(n);
    for _ in 0..n {
        let s = check(get_u32(&mut buf, "triple")?)?;
        let p = check(get_u32(&mut buf, "triple")?)?;
        let o = check(get_u32(&mut buf, "triple")?)?;
        triples.push(TripleId::new(s, p, o));
    }
    Ok(Graph::assemble(dict, schema, triples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::vocab;

    fn sample() -> Graph {
        let mut g = Graph::new();
        crate::turtle::load(
            &mut g,
            r#"
            @prefix ex: <http://example.org/> .
            ex:Book rdfs:subClassOf ex:Publication .
            ex:writtenBy rdfs:domain ex:Book .
            ex:doi1 ex:writtenBy _:b1 .
            ex:doi1 ex:hasTitle "Game of Thrones" .
            ex:doi1 a ex:Book .
            "#,
        )
        .unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = sample();
        let bytes = save(&g);
        let g2 = load(&bytes).expect("loads");
        assert_eq!(g.len(), g2.len());
        assert_eq!(g.schema(), g2.schema());
        assert_eq!(g.data(), g2.data(), "dense ids are reproduced exactly");
        assert_eq!(g.dict().len(), g2.dict().len());
        // Decoded views agree.
        for (a, b) in g.data().iter().zip(g2.data()) {
            assert_eq!(g.decode(a), g2.decode(b));
        }
    }

    #[test]
    fn round_trip_answers_identically() {
        use crate::{RdfDatabase, Strategy};
        let g = sample();
        let bytes = save(&g);
        let g2 = load(&bytes).unwrap();
        let mut db1 = RdfDatabase::from_graph(g, Default::default());
        let mut db2 = RdfDatabase::from_graph(g2, Default::default());
        db1.set_cost_constants(Default::default());
        db2.set_cost_constants(Default::default());
        let text = "SELECT ?x WHERE { ?x a <http://example.org/Publication> }";
        let q1 = db1.parse_query(text).unwrap();
        let q2 = db2.parse_query(text).unwrap();
        let a = db1.answer(&q1, &Strategy::Ucq).unwrap().rows.len();
        let b = db2.answer(&q2, &Strategy::Ucq).unwrap().rows.len();
        assert_eq!(a, b);
        assert_eq!(a, 1);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(load(b"NOTASNAP\x01\x00").err(), Some(SnapshotError::BadMagic));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = save(&sample()).to_vec();
        bytes[8] = 0xFF;
        bytes[9] = 0xFF;
        assert_eq!(load(&bytes).err(), Some(SnapshotError::UnsupportedVersion(0xFFFF)));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let bytes = save(&sample());
        for cut in [0, 5, 9, 11, 20, bytes.len() - 1] {
            let r = load(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let bytes = save(&g);
        let g2 = load(&bytes).unwrap();
        assert!(g2.is_empty());
        assert_eq!(g2.schema().len(), 0);
    }

    #[test]
    fn rdf_type_survives() {
        let mut g = Graph::new();
        g.insert(&jucq_model::Triple::new(
            Term::uri("a"),
            Term::uri(vocab::RDF_TYPE),
            Term::uri("C"),
        ));
        let g2 = load(&save(&g)).unwrap();
        assert!(g2.rdf_type_id().is_some());
    }
}
