//! A parser for the SPARQL conjunctive (BGP) fragment.
//!
//! Grammar (whitespace-separated; `#` comments to end of line):
//!
//! ```text
//! query    := prologue SELECT [DISTINCT] var+ WHERE { triple ( . triple? )* } [LIMIT n]
//! prologue := ( PREFIX name: <iri> )*
//! triple   := term term term
//! term     := ?name | <iri> | prefix:local | "literal" | a
//! ```
//!
//! `DISTINCT` is accepted and is a no-op — evaluation is under set
//! semantics throughout (the reformulation algorithms require it).
//!
//! `a` abbreviates `rdf:type`; the `rdf:` and `rdfs:` prefixes are
//! built in. Constants are interned into the database dictionary, so a
//! query may mention values the data does not contain (it then simply
//! has an empty extent for them).

use std::fmt;

use jucq_model::{vocab, Dictionary, FxHashMap, Term, TermId};
use jucq_reformulation::BgpQuery;
use jucq_store::{PatternTerm, StorePattern, VarId};

/// How parsed constants resolve to dictionary ids: interned into a
/// mutable dictionary (the `&mut RdfDatabase` path) or looked up
/// read-only against a frozen snapshot dictionary (the serving path,
/// where concurrent readers share one immutable dictionary).
enum TermScope<'d> {
    Interning(&'d mut Dictionary),
    Frozen {
        dict: &'d Dictionary,
        /// Sentinel ids for constants the frozen dictionary has never
        /// seen: allocated past the per-kind id range (stable per
        /// lexeme within one parse) so they collide with no data id —
        /// the atom simply matches nothing, exactly the answers a
        /// freshly interned id would produce.
        unknown: FxHashMap<Term, TermId>,
    },
}

impl TermScope<'_> {
    fn resolve(&mut self, term: &Term) -> TermId {
        match self {
            TermScope::Interning(dict) => dict.encode(term),
            TermScope::Frozen { dict, unknown } => {
                if let Some(id) = dict.lookup(term) {
                    return id;
                }
                let next = dict.kind_len(term.kind()) as u32
                    + unknown.keys().filter(|t| t.kind() == term.kind()).count() as u32;
                *unknown.entry(term.clone()).or_insert_with(|| TermId::new(term.kind(), next))
            }
        }
    }
}

/// A parse failure, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

/// Tokenize: brackets/braces/dots are their own tokens; quoted strings
/// keep their spaces.
fn tokenize(text: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' | '}' | '.' => {
                chars.next();
                tokens.push(c.to_string());
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some(c) => iri.push(c),
                        None => return err("unterminated IRI"),
                    }
                }
                tokens.push(format!("<{iri}>"));
            }
            '"' => {
                chars.next();
                let mut lit = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(e) => lit.push(e),
                            None => return err("unterminated escape"),
                        },
                        Some(c) => lit.push(c),
                        None => return err("unterminated literal"),
                    }
                }
                tokens.push(format!("\"{lit}\""));
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || matches!(c, '{' | '}' | '<' | '"') {
                        break;
                    }
                    // A '.' ends a word only when followed by whitespace
                    // or EOF (so prefixed names with dots would work;
                    // our workloads do not use them, but IRIs do appear
                    // in PREFIX declarations as separate tokens anyway).
                    if c == '.' {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            None => break,
                            Some(&n) if n.is_whitespace() || n == '}' => break,
                            _ => {}
                        }
                    }
                    word.push(c);
                    chars.next();
                }
                if !word.is_empty() {
                    tokens.push(word);
                }
            }
        }
    }
    Ok(tokens)
}

struct Cursor<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(want) => Ok(()),
            Some(t) => err(format!("expected `{want}`, found `{t}`")),
            None => err(format!("expected `{want}`, found end of input")),
        }
    }
}

fn builtin_prefixes() -> FxHashMap<String, String> {
    let mut m = FxHashMap::default();
    m.insert("rdf".into(), "http://www.w3.org/1999/02/22-rdf-syntax-ns#".into());
    m.insert("rdfs".into(), "http://www.w3.org/2000/01/rdf-schema#".into());
    m
}

/// Resolve one term token to a pattern term, interning constants.
fn parse_term(
    token: &str,
    scope: &mut TermScope<'_>,
    prefixes: &FxHashMap<String, String>,
    vars: &mut FxHashMap<String, VarId>,
) -> Result<PatternTerm, ParseError> {
    if token == "a" {
        return Ok(PatternTerm::Const(scope.resolve(&Term::uri(vocab::RDF_TYPE))));
    }
    if let Some(name) = token.strip_prefix('?') {
        if name.is_empty() {
            return err("empty variable name");
        }
        let n = vars.len() as VarId;
        let id = *vars.entry(name.to_owned()).or_insert(n);
        return Ok(PatternTerm::Var(id));
    }
    if let Some(iri) = token.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
        return Ok(PatternTerm::Const(scope.resolve(&Term::uri(iri))));
    }
    if let Some(lit) = token.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(PatternTerm::Const(scope.resolve(&Term::literal(lit))));
    }
    if let Some((prefix, local)) = token.split_once(':') {
        if let Some(base) = prefixes.get(prefix) {
            return Ok(PatternTerm::Const(scope.resolve(&Term::uri(format!("{base}{local}")))));
        }
        return err(format!("unknown prefix `{prefix}:`"));
    }
    err(format!("cannot parse term `{token}`"))
}

/// Parse a `SELECT … WHERE { … }` query, interning constants in `dict`.
pub fn parse_query(dict: &mut Dictionary, text: &str) -> Result<BgpQuery, ParseError> {
    parse_query_in(&mut TermScope::Interning(dict), text)
}

/// Parse against a frozen dictionary without interning — the serving
/// path, where many readers share one immutable snapshot dictionary.
/// Constants the dictionary has never seen resolve to sentinel ids
/// outside the data id range, so their atoms match nothing.
pub fn parse_query_frozen(dict: &Dictionary, text: &str) -> Result<BgpQuery, ParseError> {
    parse_query_in(&mut TermScope::Frozen { dict, unknown: FxHashMap::default() }, text)
}

fn parse_query_in(scope: &mut TermScope<'_>, text: &str) -> Result<BgpQuery, ParseError> {
    jucq_obs::span!("parse");
    let tokens = tokenize(text)?;
    let mut cur = Cursor { tokens: &tokens, pos: 0 };
    let mut prefixes = builtin_prefixes();

    // Prologue.
    while cur.peek().is_some_and(|t| t.eq_ignore_ascii_case("prefix")) {
        cur.next();
        let Some(decl) = cur.next() else {
            return err("PREFIX needs a name");
        };
        let Some(name) = decl.strip_suffix(':') else {
            return err(format!("prefix `{decl}` must end with `:`"));
        };
        let Some(iri_tok) = cur.next() else {
            return err("PREFIX needs an IRI");
        };
        let Some(iri) = iri_tok.strip_prefix('<').and_then(|t| t.strip_suffix('>')) else {
            return err(format!("prefix IRI `{iri_tok}` must be `<…>`"));
        };
        prefixes.insert(name.to_owned(), iri.to_owned());
    }

    cur.expect("SELECT")?;
    if cur.peek().is_some_and(|t| t.eq_ignore_ascii_case("distinct")) {
        cur.next(); // set semantics anyway
    }
    let mut head_names: Vec<String> = Vec::new();
    while let Some(t) = cur.peek() {
        if t.eq_ignore_ascii_case("where") {
            break;
        }
        match t.strip_prefix('?') {
            Some(name) if !name.is_empty() => head_names.push(name.to_owned()),
            _ => return err(format!("expected a ?variable in SELECT, found `{t}`")),
        }
        cur.next();
    }
    if head_names.is_empty() {
        return err("SELECT needs at least one variable");
    }
    cur.expect("WHERE")?;
    cur.expect("{")?;

    let mut vars: FxHashMap<String, VarId> = FxHashMap::default();
    // Reserve head variables first so their ids are 0..k in SELECT
    // order.
    for name in &head_names {
        let n = vars.len() as VarId;
        vars.entry(name.clone()).or_insert(n);
    }

    let mut atoms: Vec<StorePattern> = Vec::new();
    loop {
        match cur.peek() {
            Some("}") => {
                cur.next();
                break;
            }
            Some(".") => {
                cur.next();
            }
            Some(_) => {
                let s = parse_term(cur.next().expect("peeked"), scope, &prefixes, &mut vars)?;
                let p = match cur.next() {
                    Some(t) => parse_term(t, scope, &prefixes, &mut vars)?,
                    None => return err("triple missing its property"),
                };
                let o = match cur.next() {
                    Some(t) => parse_term(t, scope, &prefixes, &mut vars)?,
                    None => return err("triple missing its object"),
                };
                atoms.push(StorePattern::new(s, p, o));
            }
            None => return err("unterminated WHERE block"),
        }
    }
    let mut limit: Option<usize> = None;
    if cur.peek().is_some_and(|t| t.eq_ignore_ascii_case("limit")) {
        cur.next();
        match cur.next().map(str::parse::<usize>) {
            Some(Ok(n)) => limit = Some(n),
            _ => return err("LIMIT needs a non-negative integer"),
        }
    }
    if cur.peek().is_some() {
        return err(format!("trailing tokens after `}}`: `{}`", cur.peek().expect("peeked")));
    }
    if atoms.is_empty() {
        return err("WHERE block has no triples");
    }

    let head: Vec<VarId> =
        head_names.iter().map(|n| *vars.get(n).expect("reserved above")).collect();
    // Safety: every head variable must occur in the body.
    let body_vars: Vec<VarId> = atoms.iter().flat_map(StorePattern::variables).collect();
    for (name, &v) in head_names.iter().zip(&head) {
        if !body_vars.contains(&v) {
            return err(format!("SELECT variable ?{name} does not occur in WHERE"));
        }
    }
    let mut q = BgpQuery::new(head, atoms);
    if let Some(n) = limit {
        q = q.with_limit(n);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<(BgpQuery, Dictionary), ParseError> {
        let mut dict = Dictionary::new();
        let q = parse_query(&mut dict, text)?;
        Ok((q, dict))
    }

    #[test]
    fn simple_query() {
        let (q, dict) = parse("SELECT ?x WHERE { ?x rdf:type <http://ex/Book> . }").unwrap();
        assert_eq!(q.head, vec![0]);
        assert_eq!(q.atoms.len(), 1);
        assert!(dict.lookup_uri("http://ex/Book").is_some());
        assert!(dict.lookup_uri(vocab::RDF_TYPE).is_some());
    }

    #[test]
    fn a_abbreviates_rdf_type() {
        let (q, dict) = parse("SELECT ?x WHERE { ?x a <http://ex/Book> }").unwrap();
        let ty = dict.lookup_uri(vocab::RDF_TYPE).unwrap();
        assert_eq!(q.atoms[0].p, PatternTerm::Const(ty));
    }

    #[test]
    fn prefixes_and_multiple_triples() {
        let (q, dict) = parse(
            "PREFIX ub: <http://ub.org/> \
             SELECT ?x ?y WHERE { ?x a ?y . ?x ub:degreeFrom <http://univ7.edu> . \
             ?x ub:memberOf <http://dept0.univ7.edu> }",
        )
        .unwrap();
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.head, vec![0, 1]);
        assert!(dict.lookup_uri("http://ub.org/degreeFrom").is_some());
    }

    #[test]
    fn literals_parse_with_spaces() {
        let (q, dict) =
            parse("SELECT ?x WHERE { ?x <http://ex/title> \"Game of Thrones\" }").unwrap();
        let lit = dict.lookup(&Term::literal("Game of Thrones")).unwrap();
        assert_eq!(q.atoms[0].o, PatternTerm::Const(lit));
    }

    #[test]
    fn head_order_follows_select() {
        let (q, _) = parse("SELECT ?b ?a WHERE { ?a <http://p> ?b }").unwrap();
        assert_eq!(q.head, vec![0, 1]);
        // ?b is var 0 (first in SELECT), appearing as the object.
        assert_eq!(q.atoms[0].o, PatternTerm::Var(0));
        assert_eq!(q.atoms[0].s, PatternTerm::Var(1));
    }

    #[test]
    fn variables_shared_across_triples_unify() {
        let (q, _) = parse("SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://p> ?z }").unwrap();
        assert_eq!(q.atoms[0].o, q.atoms[1].s);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("SELECT WHERE { ?x <http://p> ?y }").unwrap_err().message.contains("SELECT"));
        assert!(parse("SELECT ?x WHERE { ?x <http://p> }")
            .unwrap_err()
            .message
            .contains("cannot parse term"));
        assert!(parse("SELECT ?q WHERE { ?x <http://p> ?y }")
            .unwrap_err()
            .message
            .contains("does not occur"));
        assert!(parse("SELECT ?x WHERE { ?x foo:p ?y }")
            .unwrap_err()
            .message
            .contains("unknown prefix"));
    }

    #[test]
    fn distinct_and_limit() {
        let (q, _) = parse("SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } LIMIT 25").unwrap();
        assert_eq!(q.limit, Some(25));
        let (q, _) = parse("SELECT ?x WHERE { ?x <http://p> ?y }").unwrap();
        assert_eq!(q.limit, None);
        assert!(parse("SELECT ?x WHERE { ?x <http://p> ?y } LIMIT abc").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let (q, _) =
            parse("# find everything\nSELECT ?x WHERE { ?x <http://p> ?y . # body\n }").unwrap();
        assert_eq!(q.atoms.len(), 1);
    }

    #[test]
    fn frozen_parse_agrees_with_interning_and_never_interns() {
        let text = "SELECT ?x WHERE { ?x a <http://ex/Book> . ?x <http://ex/p> \"v\" }";
        let mut dict = Dictionary::new();
        let interned = parse_query(&mut dict, text).unwrap();
        let before = dict.len();
        let frozen = parse_query_frozen(&dict, text).unwrap();
        assert_eq!(frozen, interned, "known constants resolve to the same ids");
        assert_eq!(dict.len(), before, "frozen parsing never grows the dictionary");

        // Unknown constants get sentinel ids beyond the dictionary's
        // per-kind range: distinct per lexeme, repeated per occurrence.
        let q = parse_query_frozen(
            &dict,
            "SELECT ?x WHERE { ?x <http://ex/u1> ?y . ?y <http://ex/u2> <http://ex/u1> }",
        )
        .unwrap();
        let PatternTerm::Const(u1) = q.atoms[0].p else { panic!("constant") };
        let PatternTerm::Const(u2) = q.atoms[1].p else { panic!("constant") };
        let PatternTerm::Const(u1_again) = q.atoms[1].o else { panic!("constant") };
        assert_ne!(u1, u2);
        assert_eq!(u1, u1_again);
        for id in [u1, u2] {
            assert!(!dict.contains_id(id), "sentinels sit outside the dictionary");
        }
        assert_eq!(dict.len(), before);
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(parse("SELECT ?x WHERE { ?x <http://p ?y }").is_err());
        assert!(parse("SELECT ?x WHERE { ?x <http://p> \"abc }").is_err());
        assert!(parse("SELECT ?x WHERE { ?x <http://p> ?y ").is_err());
    }
}
