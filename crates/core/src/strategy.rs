//! Query-answering strategies (the contenders of Section 5).

use std::time::Duration;

use jucq_reformulation::Cover;

/// Which cost estimator guides the cover search — the paper's analytic
/// model (§4.1) or the engine's internal one (the Figure 9 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// The §4.1 analytic model with calibrated constants.
    Paper,
    /// The engine's own plan-cost estimator (the paper's `EXPLAIN`
    /// harness).
    Engine,
}

/// A query-answering strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Saturation-based answering: evaluate the query unchanged over
    /// the pre-saturated graph (§2.3).
    Saturation,
    /// The classical UCQ reformulation (single-fragment cover) used by
    /// most prior work.
    Ucq,
    /// The SCQ reformulation of \[13\] (one singleton fragment per
    /// triple).
    Scq,
    /// The UCQ reformulation with the planner's range-collapse pass
    /// relied on to merge contiguous-id union members into interval
    /// scans (LiteMat-style). Reformulates exactly like [`Strategy::Ucq`];
    /// the collapse happens at plan time and pays off when the store was
    /// loaded with the hierarchy-aware dictionary encoding (a class or
    /// property subtree then occupies one contiguous id block). With the
    /// profile's `range_scans` knob off this degenerates to plain UCQ.
    Range,
    /// The UCQ reformulation minimized by containment (dropping union
    /// members subsumed by others, as the "minimal" reformulations of
    /// the paper's related work \[14, 15\]). Minimization is quadratic in
    /// the member count, so unions beyond `cap` members are left
    /// unminimized.
    MinimizedUcq {
        /// Largest union size the minimizer will process.
        cap: usize,
    },
    /// The JUCQ chosen by the exhaustive ECov search (§4.2).
    ECov {
        /// Search wall-clock budget.
        budget: Duration,
        /// Cost estimator.
        cost: CostSource,
    },
    /// The JUCQ chosen by the greedy GCov search (§4.3).
    GCov {
        /// Search wall-clock budget.
        budget: Duration,
        /// Maximum applied moves.
        max_moves: usize,
        /// Cost estimator.
        cost: CostSource,
    },
    /// A user-supplied cover (Table 2 enumerates all covers of q1 this
    /// way).
    FixedCover(Cover),
}

impl Strategy {
    /// GCov with sensible defaults (10 s budget, 10 000 moves, paper
    /// cost model).
    pub fn gcov_default() -> Self {
        Strategy::GCov {
            budget: Duration::from_secs(10),
            max_moves: 10_000,
            cost: CostSource::Paper,
        }
    }

    /// ECov with sensible defaults (30 s budget, paper cost model).
    pub fn ecov_default() -> Self {
        Strategy::ECov { budget: Duration::from_secs(30), cost: CostSource::Paper }
    }

    /// Minimized UCQ with a 2 000-member minimization cap.
    pub fn minimized_ucq_default() -> Self {
        Strategy::MinimizedUcq { cap: 2_000 }
    }

    /// Short name used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Saturation => "SAT",
            Strategy::Ucq => "UCQ",
            Strategy::Scq => "SCQ",
            Strategy::Range => "Range",
            Strategy::MinimizedUcq { .. } => "UCQmin",
            Strategy::ECov { .. } => "ECov",
            Strategy::GCov { .. } => "GCov",
            Strategy::FixedCover(_) => "Cover",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::Saturation.name(), "SAT");
        assert_eq!(Strategy::Ucq.name(), "UCQ");
        assert_eq!(Strategy::Scq.name(), "SCQ");
        assert_eq!(Strategy::Range.name(), "Range");
        assert_eq!(Strategy::ecov_default().name(), "ECov");
        assert_eq!(Strategy::gcov_default().name(), "GCov");
    }

    #[test]
    fn defaults_use_paper_model() {
        match Strategy::gcov_default() {
            Strategy::GCov { cost, .. } => assert_eq!(cost, CostSource::Paper),
            _ => unreachable!(),
        }
    }
}
