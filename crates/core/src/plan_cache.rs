//! Plan caching: amortize cover-search time across repeated queries.
//!
//! GCov/ECov planning is cheap next to a bad evaluation, but it is not
//! free (Figures 7–8: up to seconds on reformulation-heavy queries). A
//! chosen [`Cover`] depends only on the *query structure* and the
//! statistics snapshot — and by Theorem 3.1 **any** valid cover answers
//! correctly — so a cached cover stays sound across arbitrary data
//! updates; at worst it drifts from the cost optimum as statistics
//! move. The cache is therefore kept through incremental updates and
//! only dropped on re-preparation (schema/vocabulary changes).
//!
//! Covers are held behind [`Arc`], so a hit hands out a shared pointer
//! instead of deep-cloning the fragment sets on the hot path.

use std::collections::VecDeque;
use std::sync::Arc;

use jucq_model::FxHashMap;
use jucq_reformulation::{BgpQuery, Cover};

/// The cache key: the exact query plus the strategy family that chose
/// the cover (ECov and GCov choices are cached separately).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    query: BgpQuery,
    strategy: &'static str,
}

impl PlanKey {
    /// Build a key.
    pub fn new(query: BgpQuery, strategy: &'static str) -> Self {
        PlanKey { query, strategy }
    }
}

/// Hit/miss counters, for diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that required a fresh search.
    pub misses: usize,
    /// Entries evicted by the FIFO bound.
    pub evictions: usize,
}

/// A bounded FIFO cover cache.
#[derive(Debug)]
pub struct PlanCache {
    map: FxHashMap<PlanKey, (Arc<Cover>, Option<usize>)>,
    order: VecDeque<PlanKey>,
    capacity: usize,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: PlanCacheStats::default(),
        }
    }

    fn publish_size(&self) {
        jucq_obs::metrics::gauge_set("plan_cache.size", self.map.len() as f64);
    }

    /// Look up a cached cover (and the covers-explored count of the
    /// original search, for reporting). Hits share the stored cover —
    /// no deep clone.
    pub fn get(&mut self, key: &PlanKey) -> Option<(Arc<Cover>, Option<usize>)> {
        match self.map.get(key) {
            Some((cover, explored)) => {
                self.stats.hits += 1;
                jucq_obs::metrics::counter_add("plan_cache.hits", 1);
                Some((Arc::clone(cover), *explored))
            }
            None => {
                self.stats.misses += 1;
                jucq_obs::metrics::counter_add("plan_cache.misses", 1);
                None
            }
        }
    }

    /// Store a cover under `key`, evicting the oldest entry when full.
    pub fn put(&mut self, key: PlanKey, cover: Cover, explored: Option<usize>) {
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = (Arc::new(cover), explored);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.stats.evictions += 1;
                jucq_obs::metrics::counter_add("plan_cache.evictions", 1);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, (Arc::new(cover), explored));
        self.publish_size();
    }

    /// Drop every entry (keeps counters).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.publish_size();
    }

    /// Cached plan count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::TermId;
    use jucq_store::{PatternTerm, StorePattern};

    fn query(p: u32) -> BgpQuery {
        BgpQuery::new(
            vec![0],
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(TermId::new(TermKind::Uri, p)),
                PatternTerm::Var(1),
            )],
        )
    }

    fn cover(q: &BgpQuery) -> Cover {
        Cover::single_fragment(q).unwrap()
    }

    #[test]
    fn hit_after_put() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let key = PlanKey::new(q.clone(), "GCov");
        assert!(c.get(&key).is_none());
        c.put(key.clone(), cover(&q), Some(7));
        let (got, explored) = c.get(&key).unwrap();
        assert_eq!(*got, cover(&q));
        assert_eq!(explored, Some(7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hits_share_one_cover_allocation() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let key = PlanKey::new(q.clone(), "GCov");
        c.put(key.clone(), cover(&q), None);
        let (a, _) = c.get(&key).unwrap();
        let (b, _) = c.get(&key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits return the same shared cover");
        // Two borrows out plus the cache's own: three strong refs.
        assert_eq!(Arc::strong_count(&a), 3);
    }

    #[test]
    fn strategies_cached_separately() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        c.put(PlanKey::new(q.clone(), "GCov"), cover(&q), None);
        assert!(c.get(&PlanKey::new(q.clone(), "ECov")).is_none());
        assert!(c.get(&PlanKey::new(q, "GCov")).is_some());
    }

    #[test]
    fn fifo_eviction() {
        let mut c = PlanCache::new(2);
        for p in 1..=3u32 {
            let q = query(p);
            c.put(PlanKey::new(q.clone(), "GCov"), cover(&q), None);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&PlanKey::new(query(1), "GCov")).is_none(), "oldest evicted");
        assert!(c.get(&PlanKey::new(query(3), "GCov")).is_some());
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = PlanCache::new(2);
        let q = query(1);
        c.put(PlanKey::new(q.clone(), "GCov"), cover(&q), None);
        c.get(&PlanKey::new(q, "GCov"));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn size_gauge_tracks_put_evict_and_clear() {
        let _serial = crate::obs_test_lock();
        jucq_obs::reset();
        jucq_obs::set_enabled(true);
        let mut c = PlanCache::new(2);
        for p in 1..=3u32 {
            let q = query(p);
            c.put(PlanKey::new(q.clone(), "GCov"), cover(&q), None);
        }
        // Capacity 2, three puts: one eviction, size stays 2.
        assert_eq!(jucq_obs::global().snapshot().gauges["plan_cache.size"], 2.0);
        c.clear();
        let snap = jucq_obs::global().snapshot();
        jucq_obs::set_enabled(false);
        jucq_obs::reset();
        assert_eq!(snap.gauges["plan_cache.size"], 0.0, "clear() resets the gauge");
        assert_eq!(snap.counter("plan_cache.evictions"), 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = PlanCache::new(2);
        let q = query(1);
        let key = PlanKey::new(q.clone(), "GCov");
        c.put(key.clone(), cover(&q), Some(1));
        c.put(key.clone(), cover(&q), Some(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key).unwrap().1, Some(2));
    }
}
