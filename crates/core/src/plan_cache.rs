//! Plan caching: amortize cover-search and physical-planning time
//! across repeated queries.
//!
//! GCov/ECov planning is cheap next to a bad evaluation, but it is not
//! free (Figures 7–8: up to seconds on reformulation-heavy queries). A
//! chosen [`Cover`] depends only on the *query structure* and the
//! statistics snapshot — and by Theorem 3.1 **any** valid cover answers
//! correctly — so a cached cover stays sound across arbitrary data
//! updates; at worst it drifts from the cost optimum as statistics
//! move. The cache is therefore kept through incremental updates and
//! only dropped on re-preparation (schema/vocabulary changes).
//!
//! Each entry is keyed by `(query, strategy, profile)`: the cost model
//! guiding the search — and the physical plan lowered from the chosen
//! cover — both depend on the engine profile, so switching profiles
//! must not resurrect plans chosen for another engine's strengths.
//!
//! Alongside the cover, an entry can carry the **physical plan** the
//! store lowered for the reformulated JUCQ ([`jucq_store::Plan`]).
//! Unlike covers, physical plans bake in join orders and shared-scan
//! choices derived from the statistics snapshot, so they are dropped
//! (covers kept) whenever the data changes — see
//! [`PlanCache::clear_plans`].
//!
//! Covers and plans are held behind [`Arc`], so a hit hands out a
//! shared pointer instead of deep-cloning on the hot path.

use std::collections::VecDeque;
use std::sync::Arc;

use jucq_model::FxHashMap;
use jucq_reformulation::{BgpQuery, Cover};
use jucq_store::Plan;

/// The cache key: the exact query, the strategy family that chose the
/// cover (ECov and GCov choices are cached separately), and the engine
/// profile the cost model scored under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    query: BgpQuery,
    strategy: &'static str,
    profile: String,
}

impl PlanKey {
    /// Build a key.
    pub fn new(query: BgpQuery, strategy: &'static str, profile: &str) -> Self {
        PlanKey { query, strategy, profile: profile.to_string() }
    }
}

/// Hit/miss counters, for diagnostics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Cover lookups answered from the cache.
    pub hits: usize,
    /// Cover lookups that required a fresh search.
    pub misses: usize,
    /// Entries evicted by the FIFO bound.
    pub evictions: usize,
    /// Physical-plan lookups answered from the cache.
    pub plan_hits: usize,
    /// Physical-plan lookups that required fresh lowering.
    pub plan_misses: usize,
}

/// One cached entry: the chosen cover plus, optionally, the physical
/// plan lowered for one exact (non-canonical) query form. The plan slot
/// remembers which exact query it was lowered for: canonical keys are
/// shared by isomorphic queries, but a physical plan's variable ids are
/// those of one concrete query.
#[derive(Debug)]
struct Entry {
    cover: Arc<Cover>,
    explored: Option<usize>,
    plan: Option<(BgpQuery, Arc<Plan>)>,
}

/// A bounded FIFO cover + physical-plan cache.
#[derive(Debug)]
pub struct PlanCache {
    map: FxHashMap<PlanKey, Entry>,
    order: VecDeque<PlanKey>,
    capacity: usize,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: PlanCacheStats::default(),
        }
    }

    fn publish_size(&self) {
        jucq_obs::metrics::gauge_set("plan_cache.size", self.map.len() as f64);
    }

    /// Look up a cached cover (and the covers-explored count of the
    /// original search, for reporting). Hits share the stored cover —
    /// no deep clone.
    pub fn get(&mut self, key: &PlanKey) -> Option<(Arc<Cover>, Option<usize>)> {
        match self.map.get(key) {
            Some(e) => {
                self.stats.hits += 1;
                jucq_obs::metrics::counter_add("plan_cache.hits", 1);
                Some((Arc::clone(&e.cover), e.explored))
            }
            None => {
                self.stats.misses += 1;
                jucq_obs::metrics::counter_add("plan_cache.misses", 1);
                None
            }
        }
    }

    /// Store a cover under `key`, evicting the oldest entry when full.
    /// Replacing a cover drops any physical plan lowered for the old one.
    pub fn put(&mut self, key: PlanKey, cover: Cover, explored: Option<usize>) {
        if let Some(slot) = self.map.get_mut(&key) {
            *slot = Entry { cover: Arc::new(cover), explored, plan: None };
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.stats.evictions += 1;
                jucq_obs::metrics::counter_add("plan_cache.evictions", 1);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, Entry { cover: Arc::new(cover), explored, plan: None });
        self.publish_size();
    }

    /// Look up the physical plan cached for `key`, provided it was
    /// lowered for exactly `query` (isomorphic-but-renamed queries share
    /// the cover, not the plan). Counts a plan hit or miss.
    pub fn get_plan(&mut self, key: &PlanKey, query: &BgpQuery) -> Option<Arc<Plan>> {
        let hit = self
            .map
            .get(key)
            .and_then(|e| e.plan.as_ref())
            .filter(|(q, _)| q == query)
            .map(|(_, p)| Arc::clone(p));
        if hit.is_some() {
            self.stats.plan_hits += 1;
            jucq_obs::metrics::counter_add("plan_cache.plan_hits", 1);
        } else {
            self.stats.plan_misses += 1;
            jucq_obs::metrics::counter_add("plan_cache.plan_misses", 1);
        }
        hit
    }

    /// Attach the physical plan lowered for `query` to the entry at
    /// `key`. No-op when the entry is absent (evicted between the cover
    /// search and the lowering).
    pub fn attach_plan(&mut self, key: &PlanKey, query: BgpQuery, plan: Arc<Plan>) {
        if let Some(e) = self.map.get_mut(key) {
            e.plan = Some((query, plan));
        }
    }

    /// Change the capacity **without** dropping entries or counters: a
    /// no-op at the current capacity, room for more entries when grown,
    /// FIFO eviction of the oldest entries when shrunk. This is what
    /// [`enable_plan_cache`](crate::RdfDatabase::enable_plan_cache)
    /// calls on re-enable, so a profile reload can never silently wipe
    /// a warm cache.
    pub fn resize(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.stats.evictions += 1;
                jucq_obs::metrics::counter_add("plan_cache.evictions", 1);
            }
        }
        self.publish_size();
    }

    /// The FIFO bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop every cached physical plan, keeping the covers. Called when
    /// the data (hence the statistics snapshot) changes: covers stay
    /// sound (Theorem 3.1) but join orders and shared-scan choices baked
    /// into lowered plans may no longer be the ones the planner would
    /// pick.
    pub fn clear_plans(&mut self) {
        for e in self.map.values_mut() {
            e.plan = None;
        }
    }

    /// Drop every entry (keeps counters).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.publish_size();
    }

    /// Cached plan count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jucq_model::term::TermKind;
    use jucq_model::TermId;
    use jucq_store::{EngineProfile, PatternTerm, Planner, Store, StorePattern};

    fn query(p: u32) -> BgpQuery {
        BgpQuery::new(
            vec![0],
            vec![StorePattern::new(
                PatternTerm::Var(0),
                PatternTerm::Const(TermId::new(TermKind::Uri, p)),
                PatternTerm::Var(1),
            )],
        )
    }

    fn cover(q: &BgpQuery) -> Cover {
        Cover::single_fragment(q).unwrap()
    }

    fn key(q: &BgpQuery, strategy: &'static str) -> PlanKey {
        PlanKey::new(q.clone(), strategy, "pg-like")
    }

    fn physical_plan(q: &BgpQuery) -> Arc<Plan> {
        let store = Store::from_triples(&[], EngineProfile::pg_like());
        let jucq = jucq_store::StoreJucq::from_ucq(jucq_store::StoreUcq::new(
            vec![q.to_store_cq()],
            q.head.clone(),
        ));
        Arc::new(Planner::new(store.table(), store.stats(), store.profile()).plan(&jucq))
    }

    #[test]
    fn hit_after_put() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let key = key(&q, "GCov");
        assert!(c.get(&key).is_none());
        c.put(key.clone(), cover(&q), Some(7));
        let (got, explored) = c.get(&key).unwrap();
        assert_eq!(*got, cover(&q));
        assert_eq!(explored, Some(7));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hits_share_one_cover_allocation() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let key = key(&q, "GCov");
        c.put(key.clone(), cover(&q), None);
        let (a, _) = c.get(&key).unwrap();
        let (b, _) = c.get(&key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits return the same shared cover");
        // Two borrows out plus the cache's own: three strong refs.
        assert_eq!(Arc::strong_count(&a), 3);
    }

    #[test]
    fn strategies_cached_separately() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        c.put(key(&q, "GCov"), cover(&q), None);
        assert!(c.get(&key(&q, "ECov")).is_none());
        assert!(c.get(&key(&q, "GCov")).is_some());
    }

    #[test]
    fn profiles_cached_separately() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        c.put(PlanKey::new(q.clone(), "GCov", "pg-like"), cover(&q), None);
        assert!(
            c.get(&PlanKey::new(q.clone(), "GCov", "mysql-like")).is_none(),
            "a cover chosen under pg-like costs must not serve mysql-like"
        );
        assert!(c.get(&PlanKey::new(q, "GCov", "pg-like")).is_some());
    }

    #[test]
    fn fifo_eviction() {
        let mut c = PlanCache::new(2);
        for p in 1..=3u32 {
            let q = query(p);
            c.put(key(&q, "GCov"), cover(&q), None);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(&query(1), "GCov")).is_none(), "oldest evicted");
        assert!(c.get(&key(&query(3), "GCov")).is_some());
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = PlanCache::new(2);
        let q = query(1);
        c.put(key(&q, "GCov"), cover(&q), None);
        c.get(&key(&q, "GCov"));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn physical_plan_round_trips_for_the_exact_query() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let k = key(&q, "GCov");
        c.put(k.clone(), cover(&q), None);
        assert!(c.get_plan(&k, &q).is_none(), "no plan attached yet");
        let plan = physical_plan(&q);
        c.attach_plan(&k, q.clone(), Arc::clone(&plan));
        let got = c.get_plan(&k, &q).unwrap();
        assert!(Arc::ptr_eq(&got, &plan), "plan hits share one allocation");
        assert_eq!(c.stats().plan_hits, 1);
        assert_eq!(c.stats().plan_misses, 1);
    }

    #[test]
    fn physical_plan_misses_for_a_different_exact_query() {
        // Same canonical key, different concrete query (renamed vars):
        // the cover is shared, the physical plan is not.
        let mut c = PlanCache::new(4);
        let q = query(1);
        let k = key(&q, "GCov");
        c.put(k.clone(), cover(&q), None);
        c.attach_plan(&k, q.clone(), physical_plan(&q));
        let renamed = BgpQuery::new(
            vec![5],
            vec![StorePattern::new(
                PatternTerm::Var(5),
                PatternTerm::Const(TermId::new(TermKind::Uri, 1)),
                PatternTerm::Var(6),
            )],
        );
        assert!(c.get_plan(&k, &renamed).is_none());
        assert_eq!(c.stats().plan_misses, 1);
    }

    #[test]
    fn clear_plans_keeps_covers() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let k = key(&q, "GCov");
        c.put(k.clone(), cover(&q), Some(3));
        c.attach_plan(&k, q.clone(), physical_plan(&q));
        c.clear_plans();
        assert!(c.get_plan(&k, &q).is_none(), "plans dropped");
        assert!(c.get(&k).is_some(), "covers survive");
    }

    #[test]
    fn replacing_a_cover_drops_its_plan() {
        let mut c = PlanCache::new(4);
        let q = query(1);
        let k = key(&q, "GCov");
        c.put(k.clone(), cover(&q), Some(1));
        c.attach_plan(&k, q.clone(), physical_plan(&q));
        c.put(k.clone(), cover(&q), Some(2));
        assert!(c.get_plan(&k, &q).is_none(), "stale plan gone with the old cover");
        assert_eq!(c.get(&k).unwrap().1, Some(2));
    }

    #[test]
    fn size_gauge_tracks_put_evict_and_clear() {
        let _serial = crate::obs_test_lock();
        jucq_obs::reset();
        jucq_obs::set_enabled(true);
        let mut c = PlanCache::new(2);
        for p in 1..=3u32 {
            let q = query(p);
            c.put(key(&q, "GCov"), cover(&q), None);
        }
        // Capacity 2, three puts: one eviction, size stays 2.
        assert_eq!(jucq_obs::global().snapshot().gauges["plan_cache.size"], 2.0);
        c.clear();
        let snap = jucq_obs::global().snapshot();
        jucq_obs::set_enabled(false);
        jucq_obs::reset();
        assert_eq!(snap.gauges["plan_cache.size"], 0.0, "clear() resets the gauge");
        assert_eq!(snap.counter("plan_cache.evictions"), 1);
    }

    #[test]
    fn resize_preserves_entries_and_stats() {
        let mut c = PlanCache::new(4);
        for p in 1..=3u32 {
            let q = query(p);
            c.put(key(&q, "GCov"), cover(&q), None);
        }
        c.get(&key(&query(1), "GCov"));
        // Growing (or restating) the capacity keeps everything.
        c.resize(8);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(&key(&query(1), "GCov")).is_some());
        // Shrinking evicts oldest-first, still keeping counters.
        c.resize(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().hits, 2);
        assert!(c.get(&key(&query(3), "GCov")).is_some(), "newest entry survives");
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = PlanCache::new(2);
        let q = query(1);
        let k = key(&q, "GCov");
        c.put(k.clone(), cover(&q), Some(1));
        c.put(k.clone(), cover(&q), Some(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k).unwrap().1, Some(2));
    }
}
