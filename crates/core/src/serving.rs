//! Snapshot-isolated serving: pinned-epoch reads over `Arc`-swapped
//! preparation state.
//!
//! [`RdfDatabase`] answers on `&mut self`: preparation is lazy, the
//! hierarchy encoding may rewrite the dictionary, and updates mutate
//! the stores in place. That is the right shape for a single-threaded
//! CLI, and the wrong one for a server. The serving layer splits the
//! two roles:
//!
//! * a [`Snapshot`] freezes everything one answer needs — the
//!   dictionary, the prepared stores, the engine profile, and the
//!   shared plan-cache handle — behind an `Arc`. Answering runs on
//!   `&self` ([`crate::database::answer_on`]) and parsing never
//!   interns ([`crate::parser::parse_query_frozen`]), so any number of
//!   reader threads share one snapshot without locks;
//! * a [`ServingDb`] hands out the current snapshot and serializes
//!   writers behind a mutex. An update builds the next preparation
//!   copy-on-write (`Arc::make_mut` leaves the pinned epoch's stores
//!   untouched) and publishes it with one `RwLock`-guarded pointer
//!   swap. Readers pinned to an earlier epoch keep answering against
//!   exactly the state they started with.
//!
//! Schema-changing updates force a rebuild on the writer's side, which
//! re-runs the hierarchy encoding (the interval labels now cover the
//! grown hierarchy) and swaps in a fresh plan cache — remapped term
//! ids make old physical plans unsound, so the new epoch must not be
//! able to see them. Because each snapshot clones the dictionary at
//! publish time, queries parsed against an old epoch hold that epoch's
//! ids and stay correct against that epoch; new requests parse against
//! the new snapshot and see the new ids.

use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::time::Duration;

use jucq_model::{Dictionary, Term, Triple};
use jucq_reformulation::BgpQuery;
use jucq_store::{EngineProfile, Relation, ViewCatalog, ViewCatalogStats};

use crate::database::{
    answer_on, empty_answer, lock_cache, AnswerCtx, AnswerError, AnswerReport, Prepared,
    RdfDatabase, UpdateReport,
};
use crate::parser::ParseError;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::strategy::Strategy;

/// One published epoch: an immutable view of the database sufficient
/// to parse and answer queries on `&self`. Cheap to share (`Arc`) and
/// to hold — pinning an old snapshot keeps its stores alive but never
/// blocks the writer.
pub struct Snapshot {
    epoch: u64,
    dict: Dictionary,
    prepared: Arc<Prepared>,
    profile: EngineProfile,
    cache: Option<Arc<Mutex<PlanCache>>>,
    /// The shared view catalog (entries are epoch-stamped; this
    /// snapshot's requests resolve only entries stamped with exactly
    /// `epoch`, so sharing the handle across epochs is safe).
    views: Option<Arc<ViewCatalog>>,
}

impl Snapshot {
    /// The epoch this snapshot was published at (0 = initial load).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine profile requests run under by default.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Parse a SPARQL query against this epoch's dictionary without
    /// interning: constants unknown to the epoch resolve to sentinel
    /// ids beyond the dictionary, matching nothing — exactly the
    /// answer a just-interned constant would produce.
    pub fn parse_query(&self, text: &str) -> Result<BgpQuery, ParseError> {
        crate::parser::parse_query_frozen(&self.dict, text)
    }

    /// Answer `q` under `strategy` with the snapshot's own profile.
    pub fn answer(&self, q: &BgpQuery, strategy: &Strategy) -> Result<AnswerReport, AnswerError> {
        self.answer_with_limits(q, strategy, None)
    }

    /// Answer with a per-request execution override (deadline, memory
    /// budget — see [`Snapshot::request_profile`]). The override never
    /// affects plan identity: [`EngineProfile::plan_cache_key`]
    /// excludes both knobs, so cached plans are shared across requests
    /// with different limits.
    pub fn answer_with_limits(
        &self,
        q: &BgpQuery,
        strategy: &Strategy,
        limits: Option<&EngineProfile>,
    ) -> Result<AnswerReport, AnswerError> {
        jucq_obs::span!("answer");
        if q.is_empty() {
            return Ok(empty_answer(q, strategy).0);
        }
        answer_on(&self.ctx(limits), q, strategy, false).map(|(report, _)| report)
    }

    /// Answer and also build — but do not submit — the query-log
    /// record, profiled. The serving loop submits the record so every
    /// served request lands in the query log. `None` only for the
    /// empty-body short-circuit, which has nothing to profile.
    pub fn answer_recorded(
        &self,
        q: &BgpQuery,
        strategy: &Strategy,
        limits: Option<&EngineProfile>,
    ) -> (Result<AnswerReport, AnswerError>, Option<jucq_obs::QueryRecord>) {
        jucq_obs::span!("answer");
        if q.is_empty() {
            return (Ok(empty_answer(q, strategy).0), None);
        }
        let before = self.plan_cache_stats();
        let result = answer_on(&self.ctx(limits), q, strategy, true);
        let after = self.plan_cache_stats();
        let record = crate::telemetry::build_record(
            &self.dict,
            &self.profile,
            q,
            strategy,
            &result,
            before.as_ref(),
            after.as_ref(),
        );
        (result.map(|(report, _)| report), Some(record))
    }

    /// A per-request profile: the snapshot's own, with the deadline
    /// and/or memory budget tightened. `None` keeps the server default.
    pub fn request_profile(
        &self,
        deadline: Option<Duration>,
        memory_budget_tuples: Option<usize>,
    ) -> EngineProfile {
        let mut p = self.profile.clone();
        if let Some(d) = deadline {
            p = p.with_timeout(d);
        }
        if let Some(m) = memory_budget_tuples {
            p = p.with_memory_budget(m);
        }
        p
    }

    /// Decode an answer relation against this epoch's dictionary.
    pub fn decode_rows(&self, rows: &Relation) -> Vec<Vec<Term>> {
        rows.rows().map(|r| r.iter().map(|&id| self.dict.decode(id)).collect()).collect()
    }

    /// The shared plan cache's counters, if caching is enabled.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.cache.as_deref().map(|c| lock_cache(c).stats())
    }

    /// The view catalog's counters, if views are enabled.
    pub fn view_stats(&self) -> Option<ViewCatalogStats> {
        self.views.as_deref().map(|c| c.stats())
    }

    fn ctx<'a>(&'a self, limits: Option<&'a EngineProfile>) -> AnswerCtx<'a> {
        let views = if self.profile.view_scans { self.views.as_deref() } else { None };
        AnswerCtx {
            prepared: &self.prepared,
            profile: &self.profile,
            cache: self.cache.as_deref(),
            exec_profile: limits,
            views,
            epoch: self.epoch,
        }
    }
}

/// A database served concurrently: readers answer against the current
/// [`Snapshot`]; one writer at a time applies updates and publishes
/// the next epoch with an atomic pointer swap.
pub struct ServingDb {
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<RdfDatabase>,
    /// Pinned view definitions, replayed by the writer after every
    /// published update: fragments still resident (restamped by the
    /// incremental maintenance) are skipped; invalidated or
    /// rebuilt-away ones are re-materialized at the new epoch.
    pins: Mutex<Vec<(String, Strategy)>>,
}

/// Failures from [`ServingDb::pin_views`].
#[derive(Debug)]
pub enum PinError {
    /// The pinned query text does not parse.
    Parse(ParseError),
    /// Planning or materializing a fragment failed.
    Answer(AnswerError),
}

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinError::Parse(e) => write!(f, "parse: {e}"),
            PinError::Answer(e) => write!(f, "answer: {e}"),
        }
    }
}

impl std::error::Error for PinError {}

impl ServingDb {
    /// Wrap a (loaded, configured) database and publish epoch 0.
    /// Preparation — closure, stores, calibration, optional hierarchy
    /// encoding — happens here, before the first request is admitted.
    pub fn new(mut db: RdfDatabase) -> Self {
        // Re-align the catalog with the serving epoch numbering:
        // entries materialized before serving began (at any catalog
        // epoch) are restamped to epoch 0 so the first snapshot can
        // resolve them; the empty delta invalidates nothing.
        if let Some(catalog) = db.views() {
            catalog.advance_epoch(0, &jucq_store::DeltaFootprint::default());
        }
        let snapshot = Arc::new(Self::build_snapshot(&mut db, 0));
        ServingDb {
            current: RwLock::new(snapshot),
            writer: Mutex::new(db),
            pins: Mutex::new(Vec::new()),
        }
    }

    /// Pin `sparql`'s cover fragments (under `strategy`) as
    /// materialized views, now and after every future update: the
    /// definition is recorded and the writer re-materializes whatever
    /// an update invalidates when it publishes the next epoch. Entries
    /// are stamped with the *current* epoch, so in-flight requests on
    /// the current snapshot can resolve them immediately (their cached
    /// plans are invalidated; covers survive). Returns the number of
    /// fragments newly materialized.
    pub fn pin_views(&self, sparql: &str, strategy: &Strategy) -> Result<usize, PinError> {
        let mut db = self.lock_writer();
        let q = db.parse_query(sparql).map_err(PinError::Parse)?;
        let pinned = db.pin_cover_fragments(&q, strategy, None).map_err(PinError::Answer)?;
        let mut pins = self.lock_pins();
        if !pins.iter().any(|(s, st)| s == sparql && st == strategy) {
            pins.push((sparql.to_owned(), strategy.clone()));
        }
        Ok(pinned)
    }

    /// The view catalog's counters, if views are enabled.
    pub fn view_stats(&self) -> Option<jucq_store::ViewCatalogStats> {
        self.lock_writer().view_stats()
    }

    /// The current snapshot. Requests hold the returned `Arc` for
    /// their whole lifetime — parse, answer, decode — so one request
    /// observes exactly one epoch even while updates publish new ones.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.read_current())
    }

    /// The current epoch (0 = initial load).
    pub fn epoch(&self) -> u64 {
        self.read_current().epoch
    }

    /// Apply a batch of data insertions and deletions and publish the
    /// next epoch. Incremental updates mutate a private copy of the
    /// preparation (`Arc::make_mut`); schema statements or new
    /// vocabulary rebuild it — re-running the hierarchy encoding over
    /// the grown hierarchy and swapping in a fresh plan cache (the
    /// rebuild can remap term ids, so plans attached by readers still
    /// pinned to the old epoch must stay confined to the old cache
    /// instance). Readers are only blocked for the pointer swap.
    pub fn apply_data_updates(&self, inserts: &[Triple], deletes: &[Triple]) -> UpdateReport {
        let mut db = self.lock_writer();
        let report = db.apply_data_updates(inserts, deletes);
        if !report.incremental {
            db.replace_plan_cache();
        }
        let epoch = self.read_current().epoch + 1;
        // Align the catalog with the new epoch. Incremental updates
        // already advanced it in lock-step (survivors restamped,
        // intersecting fragments dropped), making this a no-op; a
        // rebuild cleared the catalog without advancing, so the new
        // epoch starts empty until the pins below refill it.
        if let Some(catalog) = db.views() {
            catalog.set_epoch(epoch);
        }
        // Re-materialize pinned definitions the update invalidated;
        // still-resident fragments are skipped (already stamped with
        // the new epoch).
        let pins = self.lock_pins().clone();
        for (sparql, strategy) in &pins {
            if let Ok(q) = db.parse_query(sparql) {
                let _ = db.pin_cover_fragments(&q, strategy, None);
            }
        }
        let snapshot = Arc::new(Self::build_snapshot(&mut db, epoch));
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = snapshot;
        report
    }

    fn build_snapshot(db: &mut RdfDatabase, epoch: u64) -> Snapshot {
        let prepared = db.prepared_shared();
        Snapshot {
            epoch,
            dict: db.graph().dict().clone(),
            prepared,
            profile: db.profile().clone(),
            cache: db.plan_cache_shared(),
            views: db.views_shared(),
        }
    }

    /// Poison recovery: a reader that panicked while holding the read
    /// lock (or a writer mid-swap — the swap is a single pointer store,
    /// so the value is always a fully built snapshot) must not wedge
    /// the server.
    fn read_current(&self) -> RwLockReadGuard<'_, Arc<Snapshot>> {
        self.current.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_writer(&self) -> MutexGuard<'_, RdfDatabase> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_pins(&self) -> MutexGuard<'_, Vec<(String, Strategy)>> {
        self.pins.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::EncodingMode;
    use jucq_model::vocab;
    use jucq_optimizer::CostConstants;

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::uri(s), Term::uri(p), o)
    }

    fn hierarchy_db(mode: EncodingMode) -> RdfDatabase {
        let mut db = RdfDatabase::new().with_encoding(mode);
        let mut triples = vec![
            t("Novel", vocab::RDFS_SUBCLASS_OF, Term::uri("Book")),
            t("Book", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("Article", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
            t("Publication", vocab::RDFS_SUBCLASS_OF, Term::uri("Work")),
            t("writtenBy", vocab::RDFS_SUBPROPERTY_OF, Term::uri("hasAuthor")),
        ];
        for (i, class) in
            ["Novel", "Book", "Article", "Publication", "Work"].into_iter().enumerate()
        {
            triples.push(t(&format!("doc{i}"), vocab::RDF_TYPE, Term::uri(class)));
            triples.push(t(&format!("doc{i}"), "writtenBy", Term::uri(format!("a{i}"))));
        }
        db.extend(&triples);
        db.set_cost_constants(CostConstants::default());
        db
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_later_updates() {
        let serving = ServingDb::new(hierarchy_db(EncodingMode::Plain));
        let snap0 = serving.snapshot();
        assert_eq!(snap0.epoch(), 0);

        let q0 = snap0.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let mut r0 = snap0.answer(&q0, &Strategy::Ucq).unwrap();
        r0.rows.sort();
        assert_eq!(r0.rows.len(), 5);

        let report =
            serving.apply_data_updates(&[t("doc9", vocab::RDF_TYPE, Term::uri("Novel"))], &[]);
        assert_eq!(report.inserted, 1);
        assert!(report.incremental, "data-only insert within known vocabulary");
        assert_eq!(serving.epoch(), 1);

        // The pinned epoch still answers against its own stores…
        let mut again = snap0.answer(&q0, &Strategy::Ucq).unwrap();
        again.rows.sort();
        assert_eq!(snap0.decode_rows(&again.rows), snap0.decode_rows(&r0.rows));

        // …while the new epoch sees the insert.
        let snap1 = serving.snapshot();
        assert_eq!(snap1.epoch(), 1);
        let q1 = snap1.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let r1 = snap1.answer(&q1, &Strategy::Ucq).unwrap();
        assert_eq!(r1.rows.len(), 6);

        // A constant the old epoch never saw parses frozen and matches
        // nothing there, but matches on the new epoch.
        let probe = "SELECT ?c WHERE { <doc9> rdf:type ?c . }";
        let old = snap0.answer(&snap0.parse_query(probe).unwrap(), &Strategy::Ucq).unwrap();
        assert_eq!(old.rows.len(), 0);
        let new = snap1.answer(&snap1.parse_query(probe).unwrap(), &Strategy::Ucq).unwrap();
        assert!(!new.rows.is_empty());
    }

    #[test]
    fn schema_update_republishes_with_fresh_encoding_and_cache() {
        let mut db = hierarchy_db(EncodingMode::Hierarchical);
        db.enable_plan_cache(8);
        let serving = ServingDb::new(db);
        let snap0 = serving.snapshot();

        let q_text = "SELECT ?x WHERE { ?x rdf:type <Work> . }";
        let q0 = snap0.parse_query(q_text).unwrap();
        // Twice: miss then hit, warming the epoch-0 cache.
        snap0.answer(&q0, &Strategy::gcov_default()).unwrap();
        let r0 = snap0.answer(&q0, &Strategy::gcov_default()).unwrap();
        assert_eq!(r0.rows.len(), 5);
        let stats0 = snap0.plan_cache_stats().unwrap();
        assert_eq!((stats0.hits, stats0.misses), (1, 1));

        // Grow the class hierarchy: rebuild, re-encode, republish.
        let report = serving.apply_data_updates(
            &[
                t("Thesis", vocab::RDFS_SUBCLASS_OF, Term::uri("Publication")),
                t("doc9", vocab::RDF_TYPE, Term::uri("Thesis")),
            ],
            &[],
        );
        assert!(!report.incremental, "schema statements force a rebuild");

        let snap1 = serving.snapshot();
        assert_eq!(snap1.epoch(), 1);

        // The new epoch's encoding covers the grown hierarchy: Range
        // agrees with UCQ and the interval collapse engages.
        let q1 = snap1.parse_query(q_text).unwrap();
        let mut ucq = snap1.answer(&q1, &Strategy::Ucq).unwrap();
        let mut range = snap1.answer(&q1, &Strategy::Range).unwrap();
        ucq.rows.sort();
        range.rows.sort();
        assert_eq!(snap1.decode_rows(&range.rows), snap1.decode_rows(&ucq.rows));
        assert_eq!(range.rows.len(), 6, "doc9 is a Work through Thesis");
        assert!(range.range_scans_planned >= 1, "collapse re-engaged after re-encoding");

        // The rebuild swapped the cache handle: the new epoch starts
        // cold, and anything readers still pinned to the old epoch
        // cache from here on stays confined to the old instance.
        let stats1 = snap1.plan_cache_stats().unwrap();
        assert_eq!((stats1.hits, stats1.misses), (0, 0));
        snap0.answer(&q0, &Strategy::gcov_default()).unwrap();
        let stats0_after = snap0.plan_cache_stats().unwrap();
        assert!(stats0_after.misses >= 2, "old-epoch traffic hits only the old instance");
        assert_eq!(snap1.plan_cache_stats().unwrap().misses, 0, "…and never the new one");

        // The pinned epoch still answers with its pre-update view.
        let old = snap0.answer(&q0, &Strategy::Ucq).unwrap();
        assert_eq!(old.rows.len(), 5);
    }

    #[test]
    fn request_profile_tightens_only_execution_knobs() {
        let serving = ServingDb::new(hierarchy_db(EncodingMode::Plain));
        let snap = serving.snapshot();
        let limits = snap.request_profile(Some(Duration::from_millis(250)), Some(1_000));
        assert_eq!(limits.timeout, Duration::from_millis(250));
        assert_eq!(limits.memory_budget_tuples, 1_000);
        // Same plan identity: cached plans are shared across limits.
        assert_eq!(limits.plan_cache_key(), snap.profile().plan_cache_key());

        let q = snap.parse_query("SELECT ?x WHERE { ?x rdf:type <Work> . }").unwrap();
        let r = snap.answer_with_limits(&q, &Strategy::Ucq, Some(&limits)).unwrap();
        assert_eq!(r.rows.len(), 5);
    }
}
