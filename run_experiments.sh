#!/bin/bash
# Regenerate every table and figure; outputs under results/.
# Prerequisite: cargo build --release --workspace --bins
set -u
cd "$(dirname "$0")"
mkdir -p results
BIN=./target/release
for exp in table1 table2 table3 calibrate fig4 fig7 updates ablation est_quality; do
  echo "=== $exp ==="
  $BIN/$exp > results/$exp.txt 2> results/$exp.log && echo OK || echo FAILED
done
echo "=== table4 ==="
$BIN/table4 > results/table4.txt 2> results/table4.log && echo OK || echo FAILED
echo "=== fig6 ==="
$BIN/fig6 > results/fig6.txt 2> results/fig6.log && echo OK || echo FAILED
echo "=== fig8 ==="
$BIN/fig8 > results/fig8.txt 2> results/fig8.log && echo OK || echo FAILED
echo "=== fig9 ==="
$BIN/fig9 > results/fig9.txt 2> results/fig9.log && echo OK || echo FAILED
echo "=== fig10 ==="
$BIN/fig10 8 8 > results/fig10.txt 2> results/fig10.log && echo OK || echo FAILED
echo "=== fig5 ==="
$BIN/fig5 12 > results/fig5.txt 2> results/fig5.log && echo OK || echo FAILED
echo ALL DONE
